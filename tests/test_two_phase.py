"""Tests for the two-phase sweep engine (miss planes + decoupled replay).

The contract: phase 1 runs the shared L1/TLB front-end once per
geometry key and persists a *miss plane*; phase 2 replays it -- either
event-filtered (``simulate(replay_plane=...)``) or timing-decoupled
(:func:`replay_decoupled`) -- and produces **byte-identical** run
records for every cell in the plane group.  Plane artifacts carry the
run-record cache's integrity discipline: corrupt or diverging planes
are quarantined with a structured event and the cell re-records,
never a crash.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.errors import CacheIntegrityError
from repro.core.observe import EventLog
from repro.core.params import RambusParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, iter_cache_files
from repro.systems.factory import (
    aggressive_l1,
    baseline_machine,
    rampage_machine,
    twoway_machine,
)
from repro.systems.simulator import simulate
from repro.trace import filter as missplane
from repro.trace import materialize
from repro.trace.filter import (
    MANIFEST_NAME,
    PLANE_DIRNAME,
    PlaneRecorder,
    PlaneReplayError,
    artifact_dir,
    attach_plane,
    commit_plane,
    get_plane,
    load_plane,
    plane_eligible,
    plane_key,
    replay_decoupled,
    structural_params,
    write_plane,
)
from repro.trace.materialize import get_workload

SCALE = 0.0002
SLICE_REFS = 4_000
SEED = 0
RATES = (2 * 10**8, 10**9, 4 * 10**9)


@pytest.fixture(autouse=True)
def fresh_registries():
    materialize.clear_registry()
    missplane.clear_registry()
    yield
    materialize.clear_registry()
    missplane.clear_registry()


def programs():
    return get_workload(SCALE, SEED, cache_dir=None).programs


def run_plain(params):
    return simulate(params, programs(), slice_refs=SLICE_REFS)


def record_plane(params):
    """Phase 1: a full run that also records the geometry's miss plane."""
    recorder = PlaneRecorder(plane_key(params, SCALE, SEED, SLICE_REFS))
    result = simulate(
        params, programs(), slice_refs=SLICE_REFS, record_plane=recorder
    )
    return result, recorder.finalize()


def config(cache_dir, rates=(10**9,), sizes=(128, 1024)):
    return ExperimentConfig(
        scale=SCALE,
        slice_refs=SLICE_REFS,
        issue_rates=rates,
        sizes=sizes,
        seed=SEED,
        cache_dir=cache_dir,
    )


# ----------------------------------------------------------------------
# Keying and eligibility
# ----------------------------------------------------------------------


def test_plane_key_ignores_timing_parameters():
    """Cells that differ only in issue rate or Rambus timing share one
    plane -- that sharing is the whole speedup."""
    base = baseline_machine(10**9, 512)
    keys = {plane_key(base, SCALE, SEED, SLICE_REFS)}
    for rate in RATES:
        keys.add(plane_key(replace(base, issue_rate_hz=rate), SCALE, SEED, SLICE_REFS))
    slow_dram = replace(base, dram=RambusParams(access_ps=90_000, ps_per_beat=2_500))
    keys.add(plane_key(slow_dram, SCALE, SEED, SLICE_REFS))
    assert len(keys) == 1


def test_plane_key_tracks_structural_parameters():
    base = baseline_machine(10**9, 512)
    key = plane_key(base, SCALE, SEED, SLICE_REFS)
    assert plane_key(baseline_machine(10**9, 128), SCALE, SEED, SLICE_REFS) != key
    assert plane_key(rampage_machine(10**9, 1024), SCALE, SEED, SLICE_REFS) != key
    assert plane_key(base, SCALE, SEED + 1, SLICE_REFS) != key
    assert plane_key(base, SCALE * 2, SEED, SLICE_REFS) != key
    assert plane_key(base, SCALE, SEED, SLICE_REFS // 2) != key


def test_structural_params_pins_only_timing_fields():
    params = baseline_machine(4 * 10**9, 512, dram=RambusParams(access_ps=1))
    pinned = structural_params(params)
    assert pinned.issue_rate_hz == 10**9
    assert pinned.dram == RambusParams()
    assert replace(pinned, issue_rate_hz=params.issue_rate_hz, dram=params.dram) == params


def test_eligibility():
    assert plane_eligible(baseline_machine(10**9, 512))
    assert plane_eligible(rampage_machine(10**9, 1024))
    assert plane_eligible(twoway_machine(10**9, 512))  # 2-way L2, DM L1s
    # Preempting machines are eligible since rampage-plane/2 (the
    # decision-op tape); only associative L1s still force the scalar loop.
    assert plane_eligible(rampage_machine(10**9, 1024, switch_on_miss=True))
    assert not plane_eligible(baseline_machine(10**9, 512, l1=aggressive_l1()))


# ----------------------------------------------------------------------
# Replay equivalence: the acceptance criterion
# ----------------------------------------------------------------------


def machines():
    return [
        ("baseline", lambda rate: baseline_machine(rate, 512)),
        ("rampage", lambda rate: rampage_machine(rate, 1024)),
    ]


@pytest.mark.parametrize("label,build", machines(), ids=[m[0] for m in machines()])
def test_recording_run_is_byte_identical_to_plain_run(label, build):
    params = build(10**9)
    plain = run_plain(params)
    recorded, _ = record_plane(params)
    assert recorded.stats.as_dict() == plain.stats.as_dict()
    assert recorded.time_ps == plain.time_ps


@pytest.mark.parametrize("label,build", machines(), ids=[m[0] for m in machines()])
def test_replays_match_full_simulation_across_rates(label, build):
    """One plane recorded at one rate serves every rate in the sweep --
    both the event-filtered and the timing-decoupled replay reproduce
    the unfiltered run's stats exactly (preemption-free machines, so
    chunk tails replay without divergence)."""
    _, plane = record_plane(build(10**9))
    for rate in RATES:
        cell = build(rate)
        expected = run_plain(cell).stats.as_dict()
        filtered = simulate(
            cell, programs(), slice_refs=SLICE_REFS, replay_plane=plane
        )
        assert filtered.stats.as_dict() == expected
        decoupled = replay_decoupled(cell, plane)
        assert decoupled.stats.as_dict() == expected


def test_decoupled_replay_reprices_dram_timing():
    """The tape is re-priced under the cell's own Rambus parameters,
    not the recording's."""
    _, plane = record_plane(baseline_machine(10**9, 512))
    slow = baseline_machine(
        10**9, 512, dram=RambusParams(access_ps=90_000, ps_per_beat=2_500)
    )
    expected = run_plain(slow).stats.as_dict()
    assert replay_decoupled(slow, plane).stats.as_dict() == expected


def test_decoupled_replay_rejects_ineligible_machines():
    _, plane = record_plane(rampage_machine(10**9, 1024))
    with pytest.raises(PlaneReplayError, match="not plane-eligible"):
        replay_decoupled(
            rampage_machine(10**9, 1024, l1=aggressive_l1()), plane
        )


# ----------------------------------------------------------------------
# Disk artifacts: round-trip, integrity, quarantine
# ----------------------------------------------------------------------


def test_plane_round_trips_through_disk(tmp_path):
    params = baseline_machine(10**9, 512)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    assert path.parent == tmp_path / PLANE_DIRNAME
    attached = load_plane(path)
    assert attached.key == plane.key
    assert attached.cycle_ps == plane.cycle_ps
    assert attached.stats == plane.stats
    assert list(attached.tape) == list(plane.tape)
    for rate in RATES:
        cell = baseline_machine(rate, 512)
        assert (
            replay_decoupled(cell, attached).stats.as_dict()
            == replay_decoupled(cell, plane).stats.as_dict()
        )


def test_attach_plane_memoizes_by_path(tmp_path):
    _, plane = record_plane(baseline_machine(10**9, 512))
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    first = attach_plane(path)
    assert attach_plane(path) is first


@pytest.mark.parametrize(
    "damage",
    [
        lambda path: (path / "tape.npy").write_bytes(b"torn"),
        lambda path: (path / MANIFEST_NAME).write_text("{ torn", "utf-8"),
        lambda path: (path / "events.npy").unlink(),
    ],
    ids=["truncated-tape", "torn-manifest", "missing-events"],
)
def test_corrupt_artifact_is_quarantined_miss(tmp_path, damage):
    params = baseline_machine(10**9, 512)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    damage(path)
    with pytest.raises(CacheIntegrityError):
        load_plane(path)
    events = EventLog()
    assert get_plane(plane.key, cache_dir=tmp_path, events=events) is None
    quarantined = events.of("plane_quarantined")
    assert len(quarantined) == 1
    assert missplane.QUARANTINE_SUFFIX in quarantined[0]["path"]
    assert quarantined[0]["reason"]
    assert Path(quarantined[0]["path"]).exists()
    assert not path.exists()


def test_tampered_timing_checksum_is_rejected(tmp_path):
    _, plane = record_plane(baseline_machine(10**9, 512))
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    manifest["timing"]["stats"]["l2_misses"] += 1
    (path / MANIFEST_NAME).write_text(json.dumps(manifest), "utf-8")
    with pytest.raises(CacheIntegrityError, match="timing"):
        load_plane(path)


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------


def test_runner_two_phase_cache_bytes_identical_to_single_phase(tmp_path):
    """The acceptance criterion end to end: a two-phase sweep leaves
    byte-identical cache records behind, for conventional and
    non-switching RAMpage grids, across every rate."""
    cfg_rates = RATES
    single = Runner(config(tmp_path / "single", rates=cfg_rates), two_phase=False)
    two = Runner(config(tmp_path / "two", rates=cfg_rates))
    for label in ("baseline", "rampage"):
        single.grid(label)
        two.grid(label)
    a = sorted(iter_cache_files(tmp_path / "single"))
    b = sorted(iter_cache_files(tmp_path / "two"))
    assert [p.name for p in a] == [p.name for p in b]
    for pa, pb in zip(a, b):
        assert pa.read_bytes() == pb.read_bytes()


def test_runner_records_once_then_replays_per_geometry(tmp_path):
    runner = Runner(config(tmp_path, rates=RATES, sizes=(1024,)))
    runner.grid("rampage")
    modes = [e["mode"] for e in runner.events.of("cell_completed")]
    assert modes.count("recorded") == 1
    assert modes.count("replayed") == len(RATES) - 1
    planes = [p for p in (tmp_path / PLANE_DIRNAME).iterdir() if p.is_dir()]
    assert len(planes) == 1


def test_switch_on_miss_cells_record_a_preempting_plane(tmp_path):
    runner = Runner(config(tmp_path, rates=RATES, sizes=(1024,)))
    runner.grid("rampage_som")
    modes = [e["mode"] for e in runner.events.of("cell_completed")]
    assert modes.count("recorded") == 1
    assert modes.count("replayed") == len(RATES) - 1
    planes = [p for p in (tmp_path / PLANE_DIRNAME).iterdir() if p.is_dir()]
    assert len(planes) == 1
    # The preempting plane carries a non-empty decision-op tape.
    plane = load_plane(planes[0])
    assert len(plane.dops) > 0


def test_runner_survives_invariant_tripping_plane(tmp_path):
    """A plane whose snapshot breaks a decoupling invariant is discarded
    (quarantine event) and the cell re-records -- same record, no crash."""
    params = baseline_machine(10**9, 512)
    pkey = plane_key(params, SCALE, SEED, SLICE_REFS)
    _, plane = record_plane(params)
    poisoned = dict(plane.stats)
    poisoned["dram_stall_ps"] = 1  # decoupling says this is always 0
    plane.stats = poisoned
    commit_plane(plane, cache_dir=tmp_path)

    runner = Runner(config(tmp_path, sizes=(512,)))
    expected = Runner(
        config(tmp_path / "ref", sizes=(512,)), two_phase=False
    ).record("baseline", params)
    record = runner.record("baseline", params)
    assert record == expected
    quarantined = runner.events.of("plane_quarantined")
    assert len(quarantined) == 1
    assert quarantined[0]["key"] == pkey
    assert "invariant" in quarantined[0]["reason"]
    # The cell re-recorded a fresh, valid plane for its siblings.
    assert [e["mode"] for e in runner.events.of("cell_completed")] == ["recorded"]
    fresh = get_plane(pkey, cache_dir=tmp_path)
    assert fresh is not None
    assert replay_decoupled(params, fresh).stats.as_dict() == expected.stats


def test_parallel_two_phase_matches_serial_with_mode_counts(tmp_path):
    cfg_kwargs = dict(rates=RATES, sizes=(128, 1024))
    serial = Runner(config(tmp_path / "serial", **cfg_kwargs))
    for label in ("baseline", "rampage", "rampage_som"):
        serial.grid(label)

    par = ParallelRunner(config(tmp_path / "par", **cfg_kwargs), workers=2)
    assert par.prefetch(("baseline", "rampage", "rampage_som")) == 18

    a = sorted(iter_cache_files(tmp_path / "serial"))
    b = sorted(iter_cache_files(tmp_path / "par"))
    assert [p.name for p in a] == [p.name for p in b]
    for pa, pb in zip(a, b):
        assert pa.read_bytes() == pb.read_bytes()

    def mode_counts(runner):
        modes = [e["mode"] for e in runner.events.of("cell_completed")]
        return {mode: modes.count(mode) for mode in set(modes)}

    # 6 plane groups (3 eligible labels x 2 sizes): one recording each,
    # the other rates replay -- the switch-on-miss grid included, via
    # its decision-op tape.
    assert mode_counts(serial) == {"recorded": 6, "replayed": 12}
    assert mode_counts(par) == mode_counts(serial)


def test_runner_without_cache_dir_still_two_phases_in_memory():
    runner = Runner(config(None, rates=RATES, sizes=(1024,)))
    runner.grid("rampage")
    modes = [e["mode"] for e in runner.events.of("cell_completed")]
    assert modes.count("recorded") == 1
    assert modes.count("replayed") == len(RATES) - 1


# ----------------------------------------------------------------------
# Registry bounds (filter: LRU by bytes; materialize: FIFO by count)
# ----------------------------------------------------------------------


def test_filter_registry_evicts_least_recently_used_by_bytes():
    _, plane = record_plane(baseline_machine(10**9, 512))
    per_plane = missplane.plane_nbytes(plane)
    assert per_plane > 0
    registry = missplane.PlaneRegistry(max_bytes=3 * per_plane)
    for index in range(3):
        registry.remember((f"key-{index}", None), plane)
    assert registry.total_bytes == 3 * per_plane
    # Touch key-0 so key-1 becomes the LRU entry, then overflow.
    assert registry.get(("key-0", None)) is plane
    registry.remember(("key-3", None), plane)
    assert len(registry) == 3
    assert ("key-1", None) not in registry
    assert ("key-0", None) in registry
    assert registry.evictions == 1
    stats = registry.stats()
    assert stats["planes"] == 3
    assert stats["bytes"] == registry.total_bytes <= registry.max_bytes


def test_filter_registry_rewrite_does_not_evict():
    _, plane = record_plane(baseline_machine(10**9, 512))
    per_plane = missplane.plane_nbytes(plane)
    registry = missplane.PlaneRegistry(max_bytes=3 * per_plane)
    for index in range(3):
        registry.remember((f"key-{index}", None), plane)
    registry.remember(("key-0", None), plane)  # refresh, registry full
    assert len(registry) == 3
    assert registry.total_bytes == 3 * per_plane
    assert registry.evictions == 0
    assert ("key-1", None) in registry


def test_filter_registry_keeps_an_over_budget_plane_usable():
    # A single plane bigger than the whole budget must still be served
    # (its group is being replayed right now); it is evicted only when
    # the next plane arrives.
    _, plane = record_plane(baseline_machine(10**9, 512))
    per_plane = missplane.plane_nbytes(plane)
    registry = missplane.PlaneRegistry(max_bytes=max(1, per_plane // 2))
    registry.remember(("big", None), plane)
    assert registry.get(("big", None)) is plane
    registry.remember(("next", None), plane)
    assert ("big", None) not in registry
    assert registry.get(("next", None)) is plane


def test_materialize_registry_is_bounded_fifo():
    sentinel = object()
    for index in range(materialize._REGISTRY_MAX + 3):
        materialize._remember((f"key-{index}",), sentinel)
    assert len(materialize._REGISTRY) == materialize._REGISTRY_MAX
    assert ("key-0",) not in materialize._REGISTRY


def test_materialize_registry_rewrite_does_not_evict():
    sentinel = object()
    for index in range(materialize._REGISTRY_MAX):
        materialize._remember((f"key-{index}",), sentinel)
    materialize._remember(("key-0",), sentinel)
    assert len(materialize._REGISTRY) == materialize._REGISTRY_MAX
    assert ("key-1",) in materialize._REGISTRY
