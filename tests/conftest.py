"""Test-suite configuration.

Hypothesis's default 200 ms deadline is flaky on loaded machines (the
benchmark harness may be running concurrently); simulation-backed
properties are deterministic in behaviour, just not in wall time, so
the deadline is disabled globally.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
