"""Tests for the rampage-sim command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "rambus" in out.lower()


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "tableX"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_run_writes_output_files(tmp_path, capsys):
    assert main(["run", "table1", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()


def test_sweep_runs_small_simulation(capsys):
    code = main(
        [
            "sweep",
            "--kind",
            "rampage",
            "--issue-rate",
            "1000000000",
            "--size",
            "1024",
            "--scale",
            "0.0001",
            "--slice-refs",
            "2000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated time" in out
    assert "page faults" in out


def test_sweep_switch_on_miss_requires_rampage(capsys):
    code = main(
        ["sweep", "--kind", "baseline", "--switch-on-miss", "--scale", "0.0001"]
    )
    assert code == 2


def test_figures_writes_svgs(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    monkeypatch.setenv("REPRO_RATES", "200000000,4000000000")
    monkeypatch.setenv("REPRO_SIZES", "128,4096")
    code = main(
        [
            "figures",
            "--out",
            str(tmp_path),
            "--scale",
            "0.0001",
            "--slice-refs",
            "2000",
        ]
    )
    assert code == 0
    assert (tmp_path / "figure4.svg").exists()
    assert len(list(tmp_path.glob("figure*.svg"))) == 7
