"""Tests for the rampage-sim command-line interface."""


from repro.cli import EXPERIMENTS, main
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner, iter_cache_files, iter_quarantined_files
from repro.systems.factory import rampage_machine
from repro.trace import filter as missplane
from repro.trace.filter import MANIFEST_NAME, PLANE_DIRNAME


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "rambus" in out.lower()


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "tableX"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_run_writes_output_files(tmp_path, capsys):
    assert main(["run", "table1", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "table1.txt").exists()


def test_sweep_runs_small_simulation(capsys):
    code = main(
        [
            "sweep",
            "--kind",
            "rampage",
            "--issue-rate",
            "1000000000",
            "--size",
            "1024",
            "--scale",
            "0.0001",
            "--slice-refs",
            "2000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated time" in out
    assert "page faults" in out


def test_sweep_switch_on_miss_requires_rampage(capsys):
    code = main(
        ["sweep", "--kind", "baseline", "--switch-on-miss", "--scale", "0.0001"]
    )
    assert code == 2


def test_sweep_seed_matches_cached_grid_cell(tmp_path, capsys, monkeypatch):
    """Acceptance: ``sweep --seed N`` is *the same cell* as a cached grid
    run with identical ``(params, scale, slice_refs, seed)`` -- the CLI
    hits the cache and reports the cached record's numbers."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cached = Runner(
        ExperimentConfig(
            scale=0.0001,
            slice_refs=2_000,
            issue_rates=(10**9,),
            sizes=(1024,),
            seed=3,
            cache_dir=tmp_path,
        )
    ).record("rampage", rampage_machine(10**9, 1024))

    code = main(
        [
            "sweep",
            "--kind",
            "rampage",
            "--issue-rate",
            "1000000000",
            "--size",
            "1024",
            "--scale",
            "0.0001",
            "--slice-refs",
            "2000",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cache: hit" in out
    assert "seed 3" in out
    assert f"workload refs: {cached.workload_refs}" in out
    assert f"simulated time: {cached.seconds:.6f} s" in out
    assert f"TLB misses: {cached.stats['tlb_misses']}" in out


def test_sweep_different_seed_is_a_different_cell(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    base = [
        "sweep",
        "--kind",
        "baseline",
        "--scale",
        "0.0001",
        "--slice-refs",
        "2000",
    ]
    assert main(base + ["--seed", "0"]) == 0
    assert "cache: miss" in capsys.readouterr().out
    assert main(base + ["--seed", "1"]) == 0
    assert "cache: miss" in capsys.readouterr().out
    assert main(base + ["--seed", "0"]) == 0
    assert "cache: hit" in capsys.readouterr().out


def test_sweep_no_cache_bypasses_the_store(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code = main(
        ["sweep", "--kind", "baseline", "--scale", "0.0001", "--slice-refs",
         "2000", "--no-cache"]
    )
    assert code == 0
    assert "cache: miss" in capsys.readouterr().out
    assert list(iter_cache_files(tmp_path)) == []


def test_cache_recovery_end_to_end(tmp_path, capsys, monkeypatch):
    """Acceptance: a kill -9 mid-write (simulated by truncating a cache
    file) leaves the cache usable -- next run misses, quarantines and
    recomputes; ``cache verify`` reports it; ``cache purge`` repairs."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    sweep = [
        "sweep",
        "--kind",
        "baseline",
        "--scale",
        "0.0001",
        "--slice-refs",
        "2000",
        "--seed",
        "0",
    ]
    assert main(sweep) == 0
    capsys.readouterr()
    path = next(iter_cache_files(tmp_path))
    text = path.read_text("utf-8")
    path.write_text(text[: len(text) // 2], "utf-8")  # torn write

    assert main(sweep) == 0  # survives, recomputes
    assert "cache: miss" in capsys.readouterr().out
    assert len(list(iter_quarantined_files(tmp_path))) == 1

    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "QUARANTINED" in out
    assert "1 quarantined" in out

    assert main(["cache", "purge", "--corrupt-only", "--dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
    assert "1 ok, 0 corrupt, 0 quarantined" in capsys.readouterr().out
    # The repaired record still serves hits.
    assert main(sweep) == 0
    assert "cache: hit" in capsys.readouterr().out


def test_cache_verify_detects_in_place_corruption(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert (
        main(["sweep", "--kind", "baseline", "--scale", "0.0001",
              "--slice-refs", "2000"]) == 0
    )
    capsys.readouterr()
    next(iter_cache_files(tmp_path)).write_text("garbage", "utf-8")
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_cache_stats_summarises_directory(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert (
        main(["sweep", "--kind", "rampage", "--scale", "0.0001",
              "--slice-refs", "2000"]) == 0
    )
    capsys.readouterr()
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "records: 1" in out
    assert "rampage" in out
    assert "quarantined files: 0" in out


def test_cache_purge_all(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert (
        main(["sweep", "--kind", "baseline", "--scale", "0.0001",
              "--slice-refs", "2000"]) == 0
    )
    capsys.readouterr()
    assert main(["cache", "purge", "--dir", str(tmp_path)]) == 0
    assert "purged 1 cache entries" in capsys.readouterr().out
    assert list(iter_cache_files(tmp_path)) == []


SWEEP = [
    "sweep", "--kind", "baseline", "--scale", "0.0001", "--slice-refs", "2000",
]


def plane_dirs(cache_dir):
    root = cache_dir / PLANE_DIRNAME
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if p.is_dir())


def test_cache_verify_covers_trace_and_plane_artifacts(tmp_path, capsys, monkeypatch):
    """A two-phase sweep leaves a trace artifact and a miss plane behind;
    ``cache verify`` validates both layouts alongside the records."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(SWEEP) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "verified 1 records: 1 ok" in out
    assert "verified 2 artifacts: 2 ok, 0 corrupt, 0 quarantined" in out

    # In-place damage to a plane array is reported, not ignored.
    (plane_dirs(tmp_path)[0] / "tape.npy").write_bytes(b"torn")
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
    assert "CORRUPT plane" in capsys.readouterr().out


def test_corrupt_plane_is_quarantined_and_sweep_recovers(tmp_path, capsys, monkeypatch):
    """End to end: a torn plane manifest is a miss -- the next cell of
    the same geometry (different rate, same plane key) quarantines it,
    re-records, and ``cache purge --corrupt-only`` cleans up."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(SWEEP + ["--issue-rate", "1000000000"]) == 0
    capsys.readouterr()
    (artifact,) = plane_dirs(tmp_path)
    (artifact / MANIFEST_NAME).write_text("{ torn", "utf-8")
    missplane.clear_registry()  # simulate a fresh process over this cache

    assert main(SWEEP + ["--issue-rate", "4000000000"]) == 0  # survives
    capsys.readouterr()
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "QUARANTINED plane" in out
    # The re-recorded plane is live and valid alongside the quarantined one.
    assert "1 quarantined" in out
    assert len(plane_dirs(tmp_path)) == 2

    assert main(["cache", "purge", "--corrupt-only", "--dir", str(tmp_path)]) == 0
    assert "1 artifact directories" in capsys.readouterr().out
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
    assert "0 corrupt, 0 quarantined" in capsys.readouterr().out


def test_cache_purge_all_removes_artifact_directories(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(SWEEP) == 0
    capsys.readouterr()
    assert main(["cache", "purge", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "purged 1 cache entries and 2 artifact directories" in out
    assert plane_dirs(tmp_path) == []


def test_bench_check_smoke(capsys):
    assert main(["bench", "--check"]) == 0
    assert "check OK" in capsys.readouterr().out


def test_cache_commands_handle_missing_directory(tmp_path, capsys):
    missing = tmp_path / "nowhere"
    assert main(["cache", "stats", "--dir", str(missing)]) == 0
    assert main(["cache", "verify", "--dir", str(missing)]) == 2
    assert main(["cache", "purge", "--dir", str(missing)]) == 2


def test_cache_commands_require_a_directory(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert main(["cache", "stats"]) == 2
    assert "caching is disabled" in capsys.readouterr().err


def test_sweep_writes_event_log(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_EVENT_LOG", str(tmp_path / "events.jsonl"))
    assert (
        main(["sweep", "--kind", "baseline", "--scale", "0.0001",
              "--slice-refs", "2000"]) == 0
    )
    from repro.core.observe import read_events

    names = [event["event"] for event in read_events(tmp_path / "events.jsonl")]
    assert "cell_started" in names
    assert "cell_completed" in names


def test_figures_writes_svgs(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    monkeypatch.setenv("REPRO_RATES", "200000000,4000000000")
    monkeypatch.setenv("REPRO_SIZES", "128,4096")
    code = main(
        [
            "figures",
            "--out",
            str(tmp_path),
            "--scale",
            "0.0001",
            "--slice-refs",
            "2000",
        ]
    )
    assert code == 0
    assert (tmp_path / "figure4.svg").exists()
    assert len(list(tmp_path.glob("figure*.svg"))) == 7


def test_cache_stats_reports_artifact_inventory(tmp_path, capsys, monkeypatch):
    """``cache stats`` itemises trace and plane artifacts with byte sizes
    and quarantine totals, not just run records."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(SWEEP) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "trace artifacts: 1 (" in out
    assert "plane artifacts: 1 (" in out
    assert out.count("quarantined: 0 (0 bytes)") == 2
    # Sizes are real byte counts, not zero.
    for line in out.splitlines():
        if "artifacts:" in line:
            size = int(line.split("(")[1].split(" bytes")[0].replace(",", ""))
            assert size > 0


def test_run_failure_exits_nonzero(capsys, monkeypatch):
    def boom(runner):
        raise RuntimeError("synthetic cell failure")

    monkeypatch.setitem(EXPERIMENTS, "table1", boom)
    assert main(["run", "table1"]) == 1
    captured = capsys.readouterr()
    assert "error: table1 failed: synthetic cell failure" in captured.err
    assert "1 experiment(s) failed" in captured.err


def test_run_keeps_going_after_a_failed_experiment(capsys, monkeypatch):
    ran = []

    def boom(runner):
        raise RuntimeError("first cell dies")

    original = EXPERIMENTS["table2"]

    def survivor(runner):
        ran.append("table2")
        return original(runner)

    monkeypatch.setitem(EXPERIMENTS, "table1", boom)
    monkeypatch.setitem(EXPERIMENTS, "table2", survivor)
    assert main(["run", "table1", "table2"]) == 1
    assert ran == ["table2"]  # later experiments still run
    captured = capsys.readouterr()
    assert "table1 failed" in captured.err
    assert "finished in" in captured.out


def test_sweep_failure_exits_nonzero(capsys, monkeypatch):
    def boom(self, label, params):
        raise RuntimeError("simulator blew up")

    monkeypatch.setattr(Runner, "record", boom)
    assert main(["sweep", "--kind", "baseline", "--scale", "0.0001",
                 "--slice-refs", "2000"]) == 1
    assert "error: sweep failed: simulator blew up" in capsys.readouterr().err
