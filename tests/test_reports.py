"""Tests for the reports subsystem (docs/reports.md).

Covers the grid-oriented builder (completeness math, read-only gap
semantics), the five-format exporter, the daemon's report/bench/
dashboard routes (404/409, content types, record ETags), the SSE
payload shape the dashboard consumes, and CLI ``report`` byte-identity
between the offline cache path and ``--server``.
"""

import csv
import io
import json
import shutil
import urllib.error
import urllib.request
import xml.etree.ElementTree as ET
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner, find_record
from repro.reports import (
    CONTENT_TYPES,
    FORMATS,
    REPORT_SCHEMA,
    build_report,
    export_report,
    report_names,
)
from repro.reports.status import bench_status, cache_status
from repro.service import ServiceClient, ServiceError, ServiceThread, SweepService
from repro.trace import materialize

FIGURE_LABELS = ("baseline", "rampage", "rampage_som", "twoway")


@pytest.fixture(autouse=True)
def fresh_trace_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


@pytest.fixture(scope="session")
def warm(tmp_path_factory):
    """A fully-warmed cache covering every figure grid (tiny workload)."""
    cache = tmp_path_factory.mktemp("reports-cache")
    config = ExperimentConfig(
        scale=0.0001,
        slice_refs=2_000,
        issue_rates=(200_000_000, 10**9),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache,
    )
    runner = Runner(config)
    for label in FIGURE_LABELS:
        runner.grid(label)
    materialize.clear_registry()
    return config


@pytest.fixture
def service(warm, tmp_path):
    """A daemon over the warm cache, with a synthetic bench snapshot."""
    bench_file = tmp_path / "BENCH_throughput.json"
    bench_file.write_text(
        json.dumps(
            {
                "unit": "refs_per_second",
                "workload": {"refs": 1000, "scale": 0.0001, "slice_refs": 2000},
                "snapshots": [
                    {
                        "date": "2026-08-01",
                        "note": "synthetic",
                        "throughput": {"conventional": 100.0, "rampage": 120.0},
                        "sweep": {
                            "cells": 6,
                            "wall_s": 1.0,
                            "two_phase_wall_s": 0.5,
                            "speedup": 1.5,
                            "two_phase_speedup": 2.0,
                            "modes": {"cached": 6},
                        },
                    }
                ],
            }
        )
    )
    svc = SweepService(
        warm,
        port=0,
        workers=1,
        queue_limit=4,
        state_dir=tmp_path / "state",
        bench_path=bench_file,
    )
    thread = ServiceThread(svc)
    url = thread.start()
    yield svc, url
    thread.stop()


def _get(url, path, headers=None):
    request = urllib.request.Request(url + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


def test_report_names_cover_grids_and_figures():
    names = report_names()
    for label in FIGURE_LABELS + ("rampage_vl1",):
        assert label in names
    for figure in ("figure2", "figure3", "figure4", "figure5", "figures"):
        assert figure in names


def test_unknown_report_name_raises():
    config = ExperimentConfig(cache_dir=None)
    with pytest.raises(ConfigurationError, match="unknown report"):
        build_report("nonsense", config)


def test_build_report_is_read_only_and_complete(warm):
    cache = Path(warm.cache_dir)
    before = sorted(path.name for path in cache.rglob("*") if path.is_file())
    report = build_report("figures", warm)
    after = sorted(path.name for path in cache.rglob("*") if path.is_file())
    assert before == after  # zero simulation, zero writes
    assert report.total == len(FIGURE_LABELS) * 2 * 2  # labels x rates x sizes
    assert report.present == report.total
    assert report.completeness == 1.0
    assert report.complete
    assert report.missing() == []
    # grids() reconstructs per-label RunGrids from the cells.
    grids = report.grids()
    assert set(grids) == set(FIGURE_LABELS)
    assert len(grids["rampage"]) == 4


def test_cold_cache_is_all_gaps_not_an_error(tmp_path):
    config = replace(
        ExperimentConfig(
            scale=0.0001,
            slice_refs=2_000,
            issue_rates=(10**9,),
            sizes=(128,),
        ),
        cache_dir=tmp_path / "empty",
    )
    report = build_report("figure4", config)
    assert report.present == 0
    assert report.completeness == 0.0
    assert len(report.missing()) == report.total
    for fmt in FORMATS:
        assert export_report(report, fmt)  # renders gaps, never raises


def test_partial_grid_completeness_math(warm):
    # Widen the sizes axis: the 4096 B cells were never simulated.
    config = replace(warm, sizes=(128, 1024, 4096))
    report = build_report("figure2", config)
    assert report.total == 2 * 2 * 3  # baseline+rampage x rates x sizes
    assert report.present == 8
    assert report.completeness == pytest.approx(8 / 12)
    assert all(cell.size_bytes == 4096 for cell in report.missing())
    payload = report.completeness_payload()
    assert payload["present"] == 8 and payload["total"] == 12
    assert len(payload["missing"]) == 4


def test_corrupt_record_is_a_gap_and_stays_on_disk(warm, tmp_path):
    cache_copy = tmp_path / "cache"
    shutil.copytree(warm.cache_dir, cache_copy)
    config = replace(warm, cache_dir=cache_copy)
    victim = build_report("rampage", config).cells[0]
    path = find_record(cache_copy, victim.key)
    path.write_text("not json {", encoding="utf-8")
    report = build_report("rampage", config)
    assert report.present == report.total - 1
    assert [cell.key for cell in report.missing()] == [victim.key]
    # Read-only contract: the bad file is NOT quarantined or renamed.
    assert find_record(cache_copy, victim.key) == path
    assert path.exists()


# ----------------------------------------------------------------------
# Exporter
# ----------------------------------------------------------------------


def test_export_dispatches_every_format(warm):
    report = build_report("figures", warm)
    rendered = {fmt: export_report(report, fmt) for fmt in FORMATS}
    assert set(CONTENT_TYPES) == set(FORMATS)
    ET.fromstring(rendered["svg"].decode("utf-8"))  # well-formed XML
    html = rendered["html"].decode("utf-8")
    assert html.startswith("<!doctype html>") and "<svg" in html
    payload = json.loads(rendered["json"])
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["completeness"] == 1.0
    assert len(payload["cells"]) == report.total
    assert payload["workload"]["scale"] == warm.scale
    md = rendered["md"].decode("utf-8")
    assert "# Report `figures`" in md and "| issue rate |" in md
    rows = list(csv.reader(io.StringIO(rendered["csv"].decode("utf-8"))))
    assert rows[0][:3] == ["label", "key", "kind"]
    assert len(rows) == report.total + 1


def test_export_renders_gaps_explicitly(warm):
    config = replace(warm, sizes=(128, 1024, 4096))
    report = build_report("figure2", config)
    md = export_report(report, "md").decode("utf-8")
    assert "—" in md  # em-dash gap markers
    assert "## Missing cells" in md
    rows = list(
        csv.reader(io.StringIO(export_report(report, "csv").decode("utf-8")))
    )
    gap_rows = [row for row in rows[1:] if row[5] == "false"]
    assert len(gap_rows) == 4
    assert all(row[6] == "" for row in gap_rows)  # empty metrics
    payload = json.loads(export_report(report, "json"))
    assert payload["completeness"] == pytest.approx(8 / 12, abs=1e-6)


def test_export_unknown_format_raises(warm):
    report = build_report("baseline", warm)
    with pytest.raises(ConfigurationError, match="unknown report format"):
        export_report(report, "tiff")


# ----------------------------------------------------------------------
# Status serializers
# ----------------------------------------------------------------------


def test_cache_status_counts_records(warm):
    status = cache_status(warm.cache_dir)
    assert status["present"]
    assert status["records"] == 16
    assert status["by_label"] == {label: 4 for label in FIGURE_LABELS}
    assert status["undecodable"] == 0
    assert set(status["artifacts"]) == {"trace", "plane"}


def test_cache_status_missing_directory(tmp_path):
    assert cache_status(tmp_path / "nope") == {
        "present": False,
        "path": str(tmp_path / "nope"),
    }
    assert cache_status(None) == {"present": False, "path": None}


def test_bench_status_shapes(tmp_path):
    missing = bench_status(tmp_path / "BENCH_throughput.json")
    assert missing["present"] is False and missing["trend"] == []
    path = tmp_path / "bench.json"
    path.write_text("{broken", encoding="utf-8")
    assert bench_status(path)["present"] is False
    path.write_text(
        json.dumps(
            {
                "unit": "refs_per_second",
                "snapshots": [
                    {
                        "date": "2026-08-01",
                        "throughput": {"rampage": 7.0},
                        "sweep": {"cells": 3, "two_phase_speedup": 2.5},
                    }
                ],
            }
        )
    )
    status = bench_status(path)
    assert status["present"] and status["snapshots"] == 1
    assert status["trend"][0]["sweep"]["two_phase_speedup"] == 2.5


def test_cli_cache_stats_json(warm, capsys):
    assert main(["cache", "stats", "--json", "--dir", str(warm.cache_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] == 16
    assert payload["by_label"]["rampage_som"] == 4


# ----------------------------------------------------------------------
# HTTP routes
# ----------------------------------------------------------------------


def test_report_routes_status_codes(service):
    svc, url = service
    status, _, body = _get(url, "/v1/reports/does_not_exist")
    assert status == 404
    assert "unknown report" in json.loads(body)["error"]
    status, _, body = _get(url, "/v1/reports/figures?format=tiff")
    assert status == 400
    status, _, body = _get(url, "/v1/reports/figures?min_complete=not-a-number")
    assert status == 400


def test_report_route_content_types_and_payloads(service):
    svc, url = service
    for fmt in FORMATS:
        status, headers, body = _get(url, f"/v1/reports/figures?format={fmt}")
        assert status == 200, (fmt, body)
        assert headers["Content-Type"] == CONTENT_TYPES[fmt]
        assert body
    status, _, body = _get(url, "/v1/reports/figures?format=json")
    payload = json.loads(body)
    assert payload["completeness"] == 1.0
    ET.fromstring(_get(url, "/v1/reports/figures?format=svg")[2].decode())


def test_report_route_409_below_min_complete(service):
    svc, url = service
    # A different scale has no cached records at all.
    status, _, body = _get(
        url, "/v1/reports/figures?format=svg&scale=0.009&min_complete=0.5"
    )
    assert status == 409
    payload = json.loads(body)
    assert payload["completeness"] == 0.0
    assert payload["present"] == 0
    assert len(payload["missing"]) == payload["total"]
    # The same request without the threshold renders the gaps instead.
    status, headers, body = _get(
        url, "/v1/reports/figures?format=svg&scale=0.009"
    )
    assert status == 200 and headers["Content-Type"] == CONTENT_TYPES["svg"]


def test_reports_index_and_client(service):
    svc, url = service
    client = ServiceClient(url)
    index = client.reports()
    assert set(index["formats"]) == set(FORMATS)
    assert "figures" in index["reports"]
    body = client.fetch_report("rampage", format="json")
    assert json.loads(body)["completeness"] == 1.0
    with pytest.raises(ServiceError) as excinfo:
        client.fetch_report("figures", format="json", min_complete=0.5,
                            spec={"scale": 0.009})
    assert excinfo.value.status == 409


def test_bench_route_and_dashboard(service):
    svc, url = service
    client = ServiceClient(url)
    status = client.bench()
    assert status["bench"]["present"] is True
    assert status["bench"]["snapshots"] == 1
    trend = status["bench"]["trend"][0]
    assert trend["throughput"]["rampage"] == 120.0
    assert trend["sweep"]["two_phase_speedup"] == 2.0
    assert status["cache"]["records"] == 16
    code, headers, body = _get(url, "/dashboard")
    assert code == 200
    assert headers["Content-Type"].startswith("text/html")
    page = body.decode("utf-8")
    assert "EventSource" in page and "/v1/bench" in page


def test_record_route_etag_and_304(service):
    svc, url = service
    key = build_report("baseline", svc.config).cells[0].key
    code, headers, body = _get(url, f"/v1/records/{key}")
    assert code == 200
    assert headers["Content-Type"] == "application/json"
    etag = headers["ETag"]
    assert etag.startswith('"') and etag.endswith('"')
    # The validator is the envelope's own record checksum.
    assert json.loads(body)["checksum"] == etag.strip('"')
    code, headers, cached = _get(
        url, f"/v1/records/{key}", {"If-None-Match": etag}
    )
    assert code == 304 and cached == b""
    assert headers["ETag"] == etag
    code, _, _ = _get(
        url, f"/v1/records/{key}", {"If-None-Match": f'W/{etag}, "stale"'}
    )
    assert code == 304
    code, _, body = _get(
        url, f"/v1/records/{key}", {"If-None-Match": '"something-else"'}
    )
    assert code == 200 and body


def test_sse_stream_has_dashboard_payload_shape(service):
    svc, url = service
    client = ServiceClient(url)
    job = client.submit({"labels": ["baseline"]})
    seen: list[tuple[str, dict]] = []
    final = client.wait(job["id"], timeout=60,
                        on_event=lambda name, payload: seen.append((name, payload)))
    assert final["status"] == "completed"
    names = [name for name, _ in seen]
    assert "job" in names  # the snapshot the dashboard seeds from
    snapshot = dict(seen)["job"]
    for field in ("id", "status", "done", "total", "modes", "leases"):
        assert field in snapshot
    # Per-cell events are racy by design (the job can finish between
    # submit and subscribe); any that did arrive must carry the fields
    # the dashboard's log line uses.
    cells = [payload for name, payload in seen if name == "cell_completed"]
    for cell in cells:
        assert {"done", "total", "key", "mode"} <= set(cell)
    # Either way the terminal payload shows the full mode mix.
    terminal = [payload for name, payload in seen
                if name in ("job_completed", "job_failed")]
    assert terminal
    assert sum(terminal[-1]["modes"].values()) == terminal[-1]["total"]
    assert terminal[-1]["done"] == terminal[-1]["total"]


# ----------------------------------------------------------------------
# CLI report verb
# ----------------------------------------------------------------------


def _env(monkeypatch, config):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(config.cache_dir))
    monkeypatch.setenv("REPRO_SCALE", str(config.scale))
    monkeypatch.setenv("REPRO_SLICE_REFS", str(config.slice_refs))
    monkeypatch.setenv(
        "REPRO_RATES", ",".join(str(rate) for rate in config.issue_rates)
    )
    monkeypatch.setenv(
        "REPRO_SIZES", ",".join(str(size) for size in config.sizes)
    )
    monkeypatch.setenv("REPRO_SEED", str(config.seed))


def test_cli_report_offline_and_server_byte_identical(
    service, warm, tmp_path, monkeypatch, capsys
):
    svc, url = service
    _env(monkeypatch, warm)
    for fmt in ("json", "svg"):
        offline = tmp_path / f"offline.{fmt}"
        remote = tmp_path / f"remote.{fmt}"
        assert main(
            ["report", "figures", "--format", fmt, "--out", str(offline)]
        ) == 0
        assert main(
            ["report", "figures", "--format", fmt, "--out", str(remote),
             "--server", url]
        ) == 0
        assert offline.read_bytes() == remote.read_bytes()
    capsys.readouterr()


def test_cli_report_min_complete_failure(warm, tmp_path, monkeypatch, capsys):
    _env(monkeypatch, warm)
    monkeypatch.setenv("REPRO_SCALE", "0.009")  # nothing cached at this scale
    code = main(
        ["report", "figures", "--format", "json", "--min-complete", "0.5",
         "--out", str(tmp_path / "never.json")]
    )
    assert code == 1
    assert not (tmp_path / "never.json").exists()
    err = capsys.readouterr().err
    assert "below" in err and '"completeness": 0.0' in err


def test_cli_report_unknown_name(warm, monkeypatch, capsys):
    _env(monkeypatch, warm)
    assert main(["report", "bogus", "--format", "md"]) == 2
    assert "unknown report" in capsys.readouterr().err
