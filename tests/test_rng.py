"""Tests for the deterministic xorshift generator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rng import XorShiftRNG


def test_deterministic_sequence():
    a = XorShiftRNG(seed=42)
    b = XorShiftRNG(seed=42)
    assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]


def test_different_seeds_differ():
    a = XorShiftRNG(seed=1)
    b = XorShiftRNG(seed=2)
    assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]


def test_zero_seed_is_remapped():
    rng = XorShiftRNG(seed=0)
    assert rng.next_u64() != 0


def test_below_range():
    rng = XorShiftRNG(seed=7)
    values = [rng.below(10) for _ in range(1000)]
    assert all(0 <= v < 10 for v in values)
    assert set(values) == set(range(10))  # all buckets reached


def test_below_one_is_always_zero():
    rng = XorShiftRNG(seed=3)
    assert all(rng.below(1) == 0 for _ in range(20))


def test_below_rejects_nonpositive():
    rng = XorShiftRNG()
    with pytest.raises(ValueError):
        rng.below(0)
    with pytest.raises(ValueError):
        rng.below(-5)


def test_coin_produces_both_faces():
    rng = XorShiftRNG(seed=11)
    flips = {rng.coin() for _ in range(100)}
    assert flips == {True, False}


def test_fork_produces_independent_streams():
    parent = XorShiftRNG(seed=5)
    child = parent.fork()
    parent_vals = [parent.next_u64() for _ in range(10)]
    child_vals = [child.next_u64() for _ in range(10)]
    assert parent_vals != child_vals


def test_fork_is_deterministic():
    children = []
    for _ in range(2):
        parent = XorShiftRNG(seed=5)
        children.append(parent.fork().next_u64())
    assert children[0] == children[1]


@given(st.integers(min_value=0, max_value=2**70))
def test_values_stay_in_64_bits(seed):
    rng = XorShiftRNG(seed)
    for _ in range(5):
        assert 0 <= rng.next_u64() < 2**64


@given(st.integers(min_value=1, max_value=1000), st.integers())
def test_below_always_in_bound(bound, seed):
    rng = XorShiftRNG(seed)
    for _ in range(10):
        assert 0 <= rng.below(bound) < bound
