"""Tests for the Table 2 catalogue."""

import pytest

from repro.core.errors import ConfigurationError
from repro.trace.benchmarks import (
    TABLE2_PROGRAMS,
    PatternMix,
    ProgramSpec,
    table2_catalog,
    total_references_millions,
)


def test_eighteen_programs():
    assert len(TABLE2_PROGRAMS) == 18


def test_catalogue_totals_match_paper():
    # Paper: "traces containing a total of 1.1-billion references".
    assert total_references_millions() == pytest.approx(1093.1, abs=0.5)


def test_known_entries_have_paper_counts():
    catalog = table2_catalog()
    assert catalog["alvinn"].ifetch_millions == 59.0
    assert catalog["alvinn"].total_millions == 72.8
    assert catalog["gcc"].total_millions == 100.0
    assert catalog["compress"].ifetch_millions == 8.0
    assert catalog["yacc"].total_millions == 12.1


def test_names_unique():
    names = [spec.name for spec in TABLE2_PROGRAMS]
    assert len(set(names)) == len(names)


def test_ifetch_fraction_in_range():
    for spec in TABLE2_PROGRAMS:
        assert 0.0 < spec.ifetch_fraction < 1.0


def test_references_at_scale():
    spec = table2_catalog()["sed"]  # 9.8 M total
    assert spec.references_at_scale(0.001) == 9_800
    assert spec.references_at_scale(1e-9) == 1  # never zero


def test_spec_rejects_ifetch_above_total():
    with pytest.raises(ConfigurationError):
        ProgramSpec("bad", "x", ifetch_millions=5.0, total_millions=4.0)


def test_spec_rejects_bad_write_fraction():
    with pytest.raises(ConfigurationError):
        ProgramSpec("bad", "x", 1.0, 2.0, write_fraction=1.5)


def test_mix_rejects_all_zero():
    with pytest.raises(ConfigurationError):
        PatternMix()


def test_mix_rejects_negative():
    with pytest.raises(ConfigurationError):
        PatternMix(sequential=-0.1, hot=1.0)


def test_combined_working_set_overcommits_sram():
    """The paper's experiments depend on the combined working set
    exceeding the 4 MB SRAM level (section 4.2's warm-up discussion)."""
    total = sum(
        spec.code_bytes
        + spec.array_bytes
        + spec.hot_bytes
        + spec.chase_bytes
        + spec.stack_bytes
        for spec in TABLE2_PROGRAMS
    )
    assert total > 4 * 1024 * 1024
