"""Unit tests for the warm-up and per-program experiments (tiny scale)."""

import pytest

from repro.experiments import ExperimentConfig, Runner
from repro.experiments import per_program, warmup
from repro.experiments.warmup import occupancy_curve
from repro.systems.factory import build_system, rampage_machine
from repro.trace.record import READ


@pytest.fixture(scope="module")
def tiny_runner():
    return Runner(
        ExperimentConfig(scale=0.0004, slice_refs=5_000, cache_dir=None)
    )


class TestWarmup:
    def test_occupancy_curve_monotone_milestones(self):
        curve = occupancy_curve(4096, scale=0.0004, slice_refs=5_000, seed=0)
        milestones = curve["milestones"]
        assert 0.5 in milestones
        reached = [milestones[m] for m in sorted(milestones)]
        assert reached == sorted(reached)
        assert curve["frames"] > 0

    def test_run_produces_three_curves(self, tiny_runner):
        output = warmup.run(tiny_runner)
        sizes = [c["page_bytes"] for c in output.data["curves"]]
        assert sizes == [128, 1024, 4096]
        assert "refs@50%" in output.text

    def test_small_pages_fill_slower(self, tiny_runner):
        output = warmup.run(tiny_runner)
        curves = {c["page_bytes"]: c for c in output.data["curves"]}
        small, large = curves[128], curves[4096]
        if 0.5 in small["milestones"] and 0.5 in large["milestones"]:
            assert small["milestones"][0.5] > large["milestones"][0.5]
        else:
            # At very small scale the 128-byte memory may not even reach
            # half occupancy -- which is itself the "fills slower" claim.
            assert 0.5 in large["milestones"]
            assert small["final_occupancy"] < large["final_occupancy"]


class TestPerProgram:
    def test_attribution_counts_sum(self, tiny_runner):
        output = per_program.run(tiny_runner)
        rows = output.data["programs"]
        assert len(rows) == 18
        assert sum(r["refs"] for r in rows) > 0
        assert all(r["tlb_misses"] >= 0 for r in rows)

    def test_per_pid_counters_populated_by_machine(self):
        system = build_system(rampage_machine(10**9, 128))
        system.access(READ, 0, pid=3)
        system.access(READ, 4096, pid=5)
        assert system.stats.tlb_misses_by_pid == {3: 1, 5: 1}
        assert system.stats.faults_by_pid == {3: 1, 5: 1}

    def test_per_pid_counters_in_as_dict(self):
        system = build_system(rampage_machine(10**9, 128))
        system.access(READ, 0, pid=2)
        data = system.finalize().stats.as_dict()
        assert data["tlb_misses_by_pid"] == {"2": 1}
        assert data["faults_by_pid"] == {"2": 1}
