"""End-to-end tests for the sweep-service HTTP daemon and client.

A real asyncio daemon runs on an ephemeral port inside the test
process.  The headline contract: records fetched over HTTP are
**byte-identical** to what the serial :class:`Runner` writes for the
same grid, and resubmitting a served grid never simulates anything.
"""

import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner, iter_cache_files
from repro.service import ServiceClient, ServiceError, ServiceThread, SweepService
from repro.trace import materialize

LABELS = ("baseline", "rampage")


@pytest.fixture(autouse=True)
def fresh_trace_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


def config(cache_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


@pytest.fixture
def service(tmp_path):
    svc = SweepService(
        config(tmp_path / "cache"), port=0, workers=1, queue_limit=4
    )
    thread = ServiceThread(svc)
    url = thread.start()
    yield svc, url
    thread.stop()


def test_service_requires_a_cache_directory(tmp_path):
    with pytest.raises(ConfigurationError, match="cache directory"):
        SweepService(
            ExperimentConfig(
                scale=0.0001,
                slice_refs=4_000,
                issue_rates=(10**9,),
                sizes=(128,),
                cache_dir=None,
            )
        )


def test_end_to_end_submit_watch_fetch_byte_identical(service, tmp_path):
    svc, url = service
    client = ServiceClient(url)

    health = client.health()
    assert health["status"] == "ok"
    assert health["admission"]["limit"] == 4

    # Ground truth: the serial runner over an independent cache.
    serial = Runner(config(tmp_path / "serial"))
    for label in LABELS:
        serial.grid(label)

    job = client.submit({"labels": list(LABELS)})
    assert job["created"] is True
    assert job["total"] == 4
    assert job["admission"] == {
        "total": 4, "cached": 0, "inflight": 0, "fresh": 4,
    }

    seen = []
    final = client.wait(
        job["id"], timeout=120, on_event=lambda name, p: seen.append(name)
    )
    assert final["status"] == "completed"
    assert final["done"] == final["total"] == 4
    assert seen[0] == "job"  # SSE opens with a snapshot
    assert "job_completed" in seen

    manifest = client.records(job["id"])
    assert manifest["status"] == "completed"
    assert len(manifest["records"]) == 4
    assert all(cell["present"] for cell in manifest["records"])

    serial_files = {
        path.name: path.read_bytes()
        for path in iter_cache_files(tmp_path / "serial")
    }
    for cell in manifest["records"]:
        fetched = client.fetch_record(cell["key"])
        assert fetched == serial_files[f"{cell['key']}.json"]

    # Resubmitting the same grid is the same (finished) job.
    again = client.submit({"labels": list(LABELS)})
    assert again["created"] is False
    assert again["id"] == job["id"]
    assert again["status"] == "completed"

    # A fresh job over already-served cells never simulates: all hits.
    subset = client.submit({"labels": ["baseline"]})
    assert subset["created"] is True
    assert subset["admission"]["fresh"] == 0
    done = client.wait(subset["id"], timeout=60)
    assert done["status"] == "completed"
    assert done["modes"] == {"cached": 2}
    assert done["modes"].get("full", 0) == 0


def test_watch_streams_cell_progress(service):
    svc, url = service
    client = ServiceClient(url)
    job = client.submit({"labels": ["baseline"]})
    cells = []
    for name, payload in client.watch(job["id"]):
        if name == "cell_completed":
            cells.append((payload["done"], payload["total"], payload["mode"]))
        if name in ("job_completed", "job_failed"):
            break
    assert [item[:2] for item in cells] == [(1, 2), (2, 2)]
    assert all(mode in ("full", "recorded", "replayed", "cached")
               for _, _, mode in cells)


def test_http_error_surfaces(service):
    svc, url = service
    client = ServiceClient(url, retries=0)
    with pytest.raises(ServiceError) as excinfo:
        client.job("0" * 24)
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.job("NOT-HEX")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.fetch_record("../../../etc/passwd")
    assert excinfo.value.status in (400, 404)
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"labels": ["no_such_grid"]})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._json("GET", "/no/such/route")
    assert excinfo.value.status == 404


def test_submit_rejects_malformed_json(service):
    svc, url = service
    request = urllib.request.Request(
        url + "/v1/jobs",
        data=b"{ torn",
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400


def test_backpressure_returns_429_with_retry_after(tmp_path):
    svc = SweepService(
        config(tmp_path / "cache"), port=0, workers=1, queue_limit=0
    )
    thread = ServiceThread(svc)
    url = thread.start()
    try:
        request = urllib.request.Request(
            url + "/v1/jobs", data=b"{}", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert excinfo.value.headers.get("Retry-After") is not None

        # The typed client translates exhausted retries into ServiceError.
        sleeps = []
        client = ServiceClient(
            url, retries=2, sleep=sleeps.append, rng=lambda: 1.0
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit({})
        assert excinfo.value.status == 429
        assert len(sleeps) == 2  # one jittered wait per retry
        assert all(delay >= 1.0 for delay in sleeps)  # Retry-After floor
    finally:
        thread.stop()


def test_client_backoff_is_jittered_and_capped():
    client = ServiceClient(
        "http://127.0.0.1:1", retries=0, backoff=0.5, max_backoff=2.0,
        rng=lambda: 0.5,
    )
    assert client.backoff_delay(0) == pytest.approx(0.25)
    assert client.backoff_delay(1) == pytest.approx(0.5)
    assert client.backoff_delay(10) == pytest.approx(1.0)  # capped at 2.0*rng
    # A server Retry-After hint is honoured but capped at max_backoff.
    assert client.backoff_delay(0, floor=3.0) == pytest.approx(2.0)
    assert client.backoff_delay(0, floor=0.3) == pytest.approx(0.3)
    # Jitter landing at zero must not produce a hot 0.0-delay loop.
    frozen = ServiceClient(
        "http://127.0.0.1:1", retries=0, backoff=0.5, max_backoff=2.0,
        rng=lambda: 0.0,
    )
    assert frozen.backoff_delay(0) == pytest.approx(0.05 * 0.5)
    assert frozen.backoff_delay(10) == pytest.approx(0.05 * 2.0)


def test_client_retries_connection_errors():
    sleeps = []
    # Nothing listens on port 1; every attempt fails fast.
    client = ServiceClient(
        "http://127.0.0.1:1",
        retries=3,
        timeout=0.2,
        sleep=sleeps.append,
        rng=lambda: 0.0,
    )
    with pytest.raises(ServiceError, match="failed after 4 attempts"):
        client.health()
    assert len(sleeps) == 3


def test_daemon_restart_recovers_journal_and_serves_job(tmp_path):
    """Acceptance: the daemon dies mid-sweep (simulated by rewinding the
    journal to the unacked submission) and a fresh daemon over the same
    state finishes the job from the cache without re-simulating."""
    cache = tmp_path / "cache"
    svc = SweepService(config(cache), port=0, workers=1)
    thread = ServiceThread(svc)
    url = thread.start()
    client = ServiceClient(url)
    job = client.submit({"labels": list(LABELS)})
    final = client.wait(job["id"], timeout=120)
    assert final["status"] == "completed"
    thread.stop()

    # Crash simulation: the journal lost everything after the submit --
    # the run records themselves are safely in the cache.
    journal = svc.store.path
    submit_line = next(
        line
        for line in journal.read_text("utf-8").splitlines()
        if json.loads(line)["op"] == "submit"
    )
    journal.write_text(submit_line + "\n", "utf-8")

    svc2 = SweepService(config(cache), port=0, workers=1)
    thread2 = ServiceThread(svc2)
    url2 = thread2.start()
    try:
        client2 = ServiceClient(url2)
        recovered = client2.wait(job["id"], timeout=120)
        assert recovered["status"] == "completed"
        assert recovered["done"] == recovered["total"] == 4
        assert recovered["modes"] == {"cached": 4}  # nothing re-simulated
        manifest = client2.records(job["id"])
        assert all(cell["present"] for cell in manifest["records"])
    finally:
        thread2.stop()


# ----------------------------------------------------------------------
# CLI verbs against a live daemon
# ----------------------------------------------------------------------


def test_cli_submit_status_watch_fetch(service, tmp_path, capsys):
    svc, url = service
    assert (
        main(["submit", "--url", url, "--labels", "baseline", "--wait"]) == 0
    )
    out = capsys.readouterr().out
    assert "job " in out and "completed" in out
    job_id = out.split()[1].rstrip(":")

    assert main(["status", "--url", url]) == 0
    assert job_id in capsys.readouterr().out
    assert main(["status", "--url", url, job_id]) == 0
    assert "completed" in capsys.readouterr().out

    assert main(["watch", "--url", url, job_id]) == 0
    assert "completed" in capsys.readouterr().out

    out_dir = tmp_path / "fetched"
    assert main(["fetch", "--url", url, job_id, "--out", str(out_dir)]) == 0
    fetched = sorted(path.name for path in out_dir.glob("*.json"))
    cached_paths = {
        path.name: path for path in iter_cache_files(svc.config.cache_dir)
    }
    assert fetched == sorted(cached_paths)
    for name in fetched:
        assert (out_dir / name).read_bytes() == cached_paths[name].read_bytes()


def test_cli_service_errors_exit_nonzero(capsys):
    # Nothing is listening here; the client gives up and the CLI
    # reports a failure exit code instead of a traceback.
    assert main(["status", "--url", "http://127.0.0.1:1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_retry_after_hint_is_ceiled_never_truncated(tmp_path):
    """A fractional backpressure hint must round *up*: truncating 0.4 s
    to "Retry-After: 0" invites an instant hot retry."""
    svc = SweepService(
        config(tmp_path / "cache"), port=0, workers=1, queue_limit=0
    )
    thread = ServiceThread(svc)
    url = thread.start()
    try:
        for hint, header in ((0.4, "1"), (1.0, "1"), (1.2, "2")):
            svc.scheduler.retry_after = hint
            request = urllib.request.Request(
                url + "/v1/jobs", data=b"{}", method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert excinfo.value.headers.get("Retry-After") == header
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["retry_after_s"] == hint  # exact hint in the JSON
    finally:
        thread.stop()


def test_fabric_daemon_serves_byte_identical_records(tmp_path):
    """``serve --fabric 2``: worker processes lease groups from the
    journal, the daemon bridges their progress to SSE, and the fetched
    records match a serial runner byte for byte."""
    svc = SweepService(
        config(tmp_path / "cache"), port=0, queue_limit=4, fabric=2
    )
    thread = ServiceThread(svc)
    url = thread.start()
    try:
        client = ServiceClient(url)
        job = client.submit({"labels": list(LABELS)})
        events = []
        final = client.wait(
            job["id"], timeout=300,
            on_event=lambda name, p: events.append((name, p)),
        )
        assert final["status"] == "completed"
        assert final["done"] == final["total"] == 4
        assert final["leases"] == {}
        cell_events = [p for name, p in events if name == "cell_completed"]
        assert len(cell_events) == 4
        assert [p["done"] for p in cell_events] == [1, 2, 3, 4]
        terminal = [name for name, _ in events if name == "job_completed"]
        assert len(terminal) == 1  # no duplicate terminal broadcast

        serial = Runner(config(tmp_path / "serial"))
        for label in LABELS:
            serial.grid(label)
        serial_files = {
            path.name: path.read_bytes()
            for path in iter_cache_files(tmp_path / "serial")
        }
        for cell in client.records(job["id"])["records"]:
            assert cell["present"]
            fetched = client.fetch_record(cell["key"])
            assert fetched == serial_files[f"{cell['key']}.json"]
    finally:
        thread.stop()
