"""Tests for the simulation driver."""

import pytest

from repro.core.errors import ConfigurationError
from repro.systems.factory import (
    baseline_machine,
    build_system,
    rampage_machine,
    twoway_machine,
)
from repro.systems.simulator import Simulator, simulate
from repro.trace.benchmarks import table2_catalog
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import SyntheticProgram


def programs(n=3, refs=2000):
    specs = list(table2_catalog().values())
    return [
        SyntheticProgram(specs[i], total_refs=refs, pid=i, seed=i, chunk_refs=256)
        for i in range(n)
    ]


def test_consumes_whole_workload():
    result = simulate(baseline_machine(issue_rate_hz=10**9), programs(), slice_refs=500)
    assert result.stats.workload_refs == 6000


def test_max_refs_stops_early():
    result = simulate(
        baseline_machine(issue_rate_hz=10**9),
        programs(),
        slice_refs=500,
        max_refs=1500,
    )
    assert 1500 <= result.stats.workload_refs < 2100


def test_max_refs_rejects_nonpositive():
    system = build_system(baseline_machine(issue_rate_hz=10**9))
    sim = Simulator(system, InterleavedWorkload(programs(), slice_refs=500))
    with pytest.raises(ConfigurationError):
        sim.run(max_refs=0)


def test_scheduled_switches_between_slices():
    # 3 programs x 2000 refs, 500-ref slices -> 12 slices, 11 boundaries.
    result = simulate(
        twoway_machine(issue_rate_hz=10**9, scheduled_switches=True),
        programs(),
        slice_refs=500,
    )
    assert result.stats.context_switches == 11
    assert result.stats.switch_refs == 11 * 400


def test_no_switch_trace_when_disabled():
    result = simulate(
        baseline_machine(issue_rate_hz=10**9, scheduled_switches=False),
        programs(),
        slice_refs=500,
    )
    assert result.stats.context_switches == 0


def test_switch_on_miss_preempts_and_still_consumes_everything():
    system = build_system(
        rampage_machine(issue_rate_hz=10**9, page_bytes=128, switch_on_miss=True)
    )
    sim = Simulator(system, InterleavedWorkload(programs(), slice_refs=500))
    result = sim.run()
    assert result.stats.workload_refs == 6000
    assert sim.preemptions > 0
    assert result.stats.switches_on_miss == sim.preemptions


def test_switch_on_miss_does_not_double_count_switch_traces():
    system = build_system(
        rampage_machine(issue_rate_hz=10**9, page_bytes=128, switch_on_miss=True)
    )
    sim = Simulator(system, InterleavedWorkload(programs(), slice_refs=500))
    result = sim.run()
    # Scheduled boundaries contribute at most (slices - 1) switches on
    # top of the on-miss ones; preempted boundaries are not re-charged.
    scheduled = result.stats.context_switches - result.stats.switches_on_miss
    assert scheduled <= 11


def test_deterministic_repeat():
    results = [
        simulate(
            rampage_machine(issue_rate_hz=10**9, page_bytes=256),
            programs(),
            slice_refs=500,
        ).time_ps
        for _ in range(2)
    ]
    assert results[0] == results[1]
