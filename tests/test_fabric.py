"""Tests for the lease-based multi-worker sweep fabric.

The contracts: work groups derive deterministically from journalled
specs (so every process plans the same leases), the ``flock``-arbitrated
claim protocol never grants one group to two live workers, leases left
by a killed worker are reclaimable after expiry, and -- the headline --
two worker processes draining one journal produce run records
**byte-identical** to a serial :class:`Runner` over the same grid,
including across a ``SIGKILL`` mid-lease.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.bench import (
    SWEEP_LABELS,
    SWEEP_RATES,
    SWEEP_SCALE,
    SWEEP_SIZES,
    SWEEP_SLICE_REFS,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner, iter_cache_files
from repro.service.fabric import WorkGroup, plan_groups, run_worker
from repro.service.jobs import (
    COMPLETED,
    JOURNAL_SCHEMA,
    JobSpec,
    JobStore,
    plan_cells,
)
from repro.trace import materialize

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fabric needs a Unix process model"
)


@pytest.fixture(autouse=True)
def fresh_trace_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


def base_config(cache_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


def bench_config(cache_dir):
    """The 9-cell bench grid (3 labels x 1 size x 3 rates)."""
    return ExperimentConfig(
        scale=SWEEP_SCALE,
        slice_refs=SWEEP_SLICE_REFS,
        issue_rates=SWEEP_RATES,
        sizes=SWEEP_SIZES,
        seed=0,
        cache_dir=cache_dir,
    )


def spec_for(config, labels):
    return JobSpec(
        labels=tuple(labels),
        scale=config.scale,
        slice_refs=config.slice_refs,
        issue_rates=config.issue_rates,
        sizes=config.sizes,
        seed=config.seed,
    )


def journal_entries(store):
    entries = []
    for line in store.path.read_text("utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # sealed torn fragment: replay skips it too
    return entries


def worker_command(state_dir, cache_dir, worker_id, job_id, **flags):
    command = [
        sys.executable,
        "-c",
        "from repro.service.fabric import main; raise SystemExit(main())",
        "--state-dir",
        str(state_dir),
        "--cache-dir",
        str(cache_dir),
        "--worker-id",
        worker_id,
        "--job",
        job_id,
    ]
    for flag, value in flags.items():
        command += [f"--{flag.replace('_', '-')}", str(value)]
    return command


def worker_env():
    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def cache_bytes(cache_dir):
    return {path.name: path.read_bytes() for path in iter_cache_files(cache_dir)}


# ----------------------------------------------------------------------
# Work-group planning
# ----------------------------------------------------------------------


def test_plan_groups_is_deterministic_and_covers_every_cell(tmp_path):
    config = bench_config(tmp_path / "cache")
    spec = spec_for(config, SWEEP_LABELS)
    groups = plan_groups(spec, config)
    again = plan_groups(spec, config)
    assert [group.gid for group in groups] == [group.gid for group in again]
    assert [group.keys for group in groups] == [group.keys for group in again]
    covered = [key for group in groups for key in group.keys]
    assert sorted(covered) == sorted(cell.key for cell in plan_cells(spec, config))
    assert len(covered) == len(set(covered)) == 9
    # The three sibling rates of each plane-eligible geometry share one
    # group, so whole-group re-pricing survives the process boundary.
    assert len(groups) < 9
    assert max(len(group.cells) for group in groups) == len(SWEEP_RATES)


def test_plan_groups_without_cache_dir_is_per_cell(tmp_path):
    config = base_config(None)
    spec = spec_for(config, ("baseline",))
    groups = plan_groups(spec, config)
    # No cache to ship planes through: every cell is its own group.
    assert all(len(group.cells) == 1 for group in groups)


# ----------------------------------------------------------------------
# Lease protocol
# ----------------------------------------------------------------------


def test_claim_is_exclusive_release_reopens(tmp_path):
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, ("baseline",))
    job, _ = store.submit(spec, plan_cells(spec, config))
    assert store.claim_group(job.id, "g1", "alice", ttl=60)
    assert store.claim_group(job.id, "g1", "alice", ttl=60)  # renewal
    assert not store.claim_group(job.id, "g1", "bob", ttl=60)
    assert store.claim_group(job.id, "g2", "bob", ttl=60)  # other group
    store.release_group(job.id, "g1", "bob")  # not the holder: no-op
    assert not store.claim_group(job.id, "g1", "bob", ttl=60)
    store.release_group(job.id, "g1", "alice")
    assert store.claim_group(job.id, "g1", "bob", ttl=60)
    ops = [entry["op"] for entry in journal_entries(store)]
    assert ops == ["submit", "lease", "lease", "lease", "release", "lease"]
    assert all(
        entry["schema"] == JOURNAL_SCHEMA for entry in journal_entries(store)
    )


def test_expired_lease_is_reclaimable(tmp_path):
    now = [1000.0]
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state", clock=lambda: now[0])
    spec = spec_for(config, ("baseline",))
    job, _ = store.submit(spec, plan_cells(spec, config))
    assert store.claim_group(job.id, "g1", "alice", ttl=5)
    assert not store.claim_group(job.id, "g1", "bob", ttl=5)
    now[0] += 6  # alice died; her lease lapses
    assert store.claim_group(job.id, "g1", "bob", ttl=5)
    assert store.get(job.id).leases["g1"]["worker"] == "bob"


def test_recovery_drops_expired_leases_keeps_live_ones(tmp_path):
    now = [1000.0]
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state", clock=lambda: now[0])
    spec = spec_for(config, ("baseline",))
    job, _ = store.submit(spec, plan_cells(spec, config))
    store.claim_group(job.id, "g1", "alice", ttl=5)
    store.claim_group(job.id, "g2", "carol", ttl=500)

    now[0] += 6
    second = JobStore(tmp_path / "state", clock=lambda: now[0])
    second.recover()
    recovered = second.get(job.id)
    assert "g1" not in recovered.leases  # expired: reclaimable
    assert recovered.leases["g2"]["worker"] == "carol"  # still live


def test_v1_journal_without_lease_ops_still_replays(tmp_path):
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, ("baseline",))
    cells = plan_cells(spec, config)
    job, _ = store.submit(spec, cells)
    # Rewrite the journal as a v1 journal (schema tag, no lease ops).
    lines = []
    for entry in journal_entries(store):
        entry["schema"] = "rampage-job/1"
        lines.append(json.dumps(entry))
    store.path.write_text("\n".join(lines) + "\n", "utf-8")
    second = JobStore(tmp_path / "state")
    resumed = second.recover()
    assert [item.id for item in resumed] == [job.id]
    assert second.get(job.id).leases == {}


def test_tail_folds_in_a_sibling_stores_appends(tmp_path):
    config = base_config(tmp_path / "cache")
    a = JobStore(tmp_path / "state")
    b = JobStore(tmp_path / "state")
    b.recover()
    spec = spec_for(config, ("baseline",))
    cells = plan_cells(spec, config)
    job, _ = a.submit(spec, cells)
    assert b.get(job.id) is None
    applied = b.tail()
    assert [entry["op"] for entry in applied] == ["submit"]
    assert b.get(job.id).id == job.id
    # Progress journalled by b is visible to a, and vice versa.
    b.mark_running(job.id)
    b.record_cell(job.id, cells[0].key, "full", label="baseline")
    a.tail()
    assert a.get(job.id).done == 1
    assert a.get(job.id).status == "running"
    # A store's own appends never come back out of its tail().
    assert a.tail() == []
    assert b.tail() == []


def test_torn_tail_is_sealed_before_new_appends(tmp_path):
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, ("baseline",))
    job, _ = store.submit(spec, plan_cells(spec, config))
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "cell", "id": "' + job.id)  # kill -9 mid-append

    second = JobStore(tmp_path / "state")
    second.recover()
    second.mark_running(job.id)
    # The torn fragment became one complete bad line; the new op parses.
    ops = [entry["op"] for entry in journal_entries(second)]
    assert ops == ["submit", "start"]
    third = JobStore(tmp_path / "state")
    third.recover()
    assert third.get(job.id).status == "queued"  # running at crash
    assert third.get(job.id).done == 0


# ----------------------------------------------------------------------
# In-process worker execution
# ----------------------------------------------------------------------


def test_run_worker_drains_a_job_to_completion(tmp_path):
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, ("baseline",))
    job, _ = store.submit(spec, plan_cells(spec, config))
    stats = run_worker(
        tmp_path / "state", config, "solo", job_filter={job.id}
    )
    assert stats["cells"] == 2
    store.tail()
    final = store.get(job.id)
    assert final.status == COMPLETED
    assert final.done == final.total == 2
    assert final.leases == {}

    # Byte-identity against a serial runner on a fresh cache.
    serial = Runner(base_config(tmp_path / "serial"))
    serial.prefetch(["baseline"])
    assert cache_bytes(tmp_path / "cache") == cache_bytes(tmp_path / "serial")


# ----------------------------------------------------------------------
# Multi-process byte-identity (the acceptance bar)
# ----------------------------------------------------------------------


def test_two_workers_drain_bench_grid_byte_identical_to_serial(tmp_path):
    config = bench_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, SWEEP_LABELS)
    job, _ = store.submit(spec, plan_cells(spec, config))
    env = worker_env()
    procs = [
        subprocess.Popen(
            worker_command(
                tmp_path / "state", tmp_path / "cache", f"w{index}", job.id
            ),
            env=env,
            stdout=subprocess.PIPE,
        )
        for index in range(2)
    ]
    stats = []
    for proc in procs:
        out, _ = proc.communicate(timeout=600)
        assert proc.returncode == 0
        stats.append(json.loads(out))
    store.tail()
    final = store.get(job.id)
    assert final.status == COMPLETED
    assert final.done == final.total == 9

    serial = Runner(bench_config(tmp_path / "serial"))
    serial.prefetch(list(SWEEP_LABELS))
    fabric_files = cache_bytes(tmp_path / "cache")
    assert len(fabric_files) == 9
    assert fabric_files == cache_bytes(tmp_path / "serial")

    # No lease was ever granted while another worker held it live: every
    # lease either follows the holder's release or replaces the same
    # holder's earlier claim (renewal).
    held: dict[str, str] = {}
    conflicts = []
    for entry in journal_entries(store):
        if entry["op"] == "lease":
            holder = held.get(entry["group"])
            if holder is not None and holder != entry["worker"]:
                conflicts.append(entry)
            held[entry["group"]] = entry["worker"]
        elif entry["op"] == "release":
            held.pop(entry["group"], None)
    assert conflicts == []


def test_sigkill_mid_lease_is_reclaimed_and_byte_identical(tmp_path):
    """Worker A claims a group and is SIGKILLed mid-lease; worker B
    reclaims after expiry and finishes the job to the same bytes."""
    config = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    spec = spec_for(config, ("baseline", "rampage"))
    job, _ = store.submit(spec, plan_cells(spec, config))
    env = worker_env()

    victim = subprocess.Popen(
        worker_command(
            tmp_path / "state",
            tmp_path / "cache",
            "victim",
            job.id,
            ttl=2.0,
            hold_after_claim=120.0,  # park inside the lease
        ),
        env=env,
        stdout=subprocess.PIPE,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        store.tail()
        current = store.get(job.id)
        if current is not None and current.leases:
            break
        time.sleep(0.05)
    assert store.get(job.id).leases, "victim never claimed a group"
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    survivor = subprocess.Popen(
        worker_command(
            tmp_path / "state",
            tmp_path / "cache",
            "survivor",
            job.id,
            ttl=2.0,
            poll=0.05,
        ),
        env=env,
        stdout=subprocess.PIPE,
    )
    out, _ = survivor.communicate(timeout=600)
    assert survivor.returncode == 0
    store.tail()
    final = store.get(job.id)
    assert final.status == COMPLETED
    assert final.done == final.total == 4

    serial = Runner(base_config(tmp_path / "serial"))
    serial.prefetch(["baseline", "rampage"])
    assert cache_bytes(tmp_path / "cache") == cache_bytes(tmp_path / "serial")
    # The survivor's reclaim happened strictly after the victim's lease
    # expired -- the journal shows no overlapping live leases.
    leases = [
        entry
        for entry in journal_entries(store)
        if entry["op"] == "lease" and entry["worker"] == "survivor"
    ]
    victim_leases = [
        entry
        for entry in journal_entries(store)
        if entry["op"] == "lease" and entry["worker"] == "victim"
    ]
    for mine in leases:
        for theirs in victim_leases:
            if mine["group"] == theirs["group"]:
                assert mine["ts"] >= theirs["expires_ts"]
