"""Tests for the DRAM / storage timing models."""

import pytest

from repro.core.params import DiskParams, RambusParams
from repro.mem.dram import (
    RambusChannel,
    SdramTiming,
    disk_transfer_s,
    rambus_pipelined_ps,
    rambus_transfer_ps,
    sdram_transfer_ps,
)


class TestRambusTiming:
    def test_paper_4k_transfer(self):
        # 50 ns + 2048 beats * 1.25 ns = 2610 ns: the paper's "about
        # 2,600 instructions" at a 1 GHz issue rate.
        assert rambus_transfer_ps(RambusParams(), 4096) == 2_610_000

    def test_two_byte_transfer(self):
        assert rambus_transfer_ps(RambusParams(), 2) == 51_250

    def test_odd_sizes_round_up_to_beats(self):
        params = RambusParams()
        assert rambus_transfer_ps(params, 1) == rambus_transfer_ps(params, 2)
        assert rambus_transfer_ps(params, 3) == rambus_transfer_ps(params, 4)

    def test_zero_bytes_costs_nothing(self):
        assert rambus_transfer_ps(RambusParams(), 0) == 0

    def test_pipelined_hides_access_latency_for_small_units(self):
        # "95% of peak bandwidth ... on units as small as 2 bytes".
        params = RambusParams(pipelined=True)
        piped = rambus_pipelined_ps(params, 2)
        assert piped == round(1250 / 0.95)
        assert piped < rambus_transfer_ps(params, 2)

    def test_pipelined_never_slower_than_plain(self):
        params = RambusParams(pipelined=True)
        for nbytes in (2, 128, 4096, 65536):
            assert rambus_pipelined_ps(params, nbytes) <= rambus_transfer_ps(
                params, nbytes
            )


class TestSdramAndDisk:
    def test_sdram_paper_example(self):
        # 50 ns initial + 10 ns per 16-byte beat.
        timing = SdramTiming()
        assert sdram_transfer_ps(timing, 16) == 60_000
        assert sdram_transfer_ps(timing, 128) == 50_000 + 8 * 10_000

    def test_disk_4k_costs_10ms_ish(self):
        # Paper: "a 4Kbyte disk transfer costs about 10-million
        # instructions" at 1 GHz, i.e. about 10.1 ms.
        cost = disk_transfer_s(DiskParams(), 4096)
        assert cost == pytest.approx(10.1024e-3, rel=1e-3)


class TestRambusChannel:
    def test_synchronous_on_idle_channel(self):
        channel = RambusChannel(RambusParams())
        wait, cost = channel.synchronous(0, 128)
        assert wait == 0
        assert cost == rambus_transfer_ps(RambusParams(), 128)
        assert channel.free_at_ps == cost

    def test_synchronous_queues_behind_background(self):
        channel = RambusChannel(RambusParams())
        ready = channel.begin_background(0, 4096)
        wait, cost = channel.synchronous(1000, 128)
        assert wait == ready - 1000
        assert channel.free_at_ps == ready + cost

    def test_background_chains(self):
        channel = RambusChannel(RambusParams())
        first = channel.begin_background(0, 1024)
        second = channel.begin_background(0, 1024)
        assert second > first

    def test_pipelined_background_chain_is_faster(self):
        # Small queued transfers are where pipelining pays: the access
        # latency dominates them on a plain channel.
        plain = RambusChannel(RambusParams())
        piped = RambusChannel(RambusParams(pipelined=True))
        for channel in (plain, piped):
            channel.begin_background(0, 128)
            channel.begin_background(0, 128)
        assert piped.free_at_ps < plain.free_at_ps

    def test_accounting(self):
        channel = RambusChannel(RambusParams())
        channel.synchronous(0, 128)
        channel.begin_background(0, 128)
        assert channel.transfers == 2
        assert channel.bytes_moved == 256
        assert channel.busy_ps > 0

    def test_utilisation(self):
        channel = RambusChannel(RambusParams())
        _, cost = channel.synchronous(0, 4096)
        assert channel.utilisation(2 * cost) == pytest.approx(0.5)
        assert channel.utilisation(0) == 0.0
