"""Tests for the switching policy."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ossim.scheduler import SwitchPolicy


def test_none_policy():
    policy = SwitchPolicy.none()
    assert not policy.scheduled and not policy.on_miss


def test_scheduled_only():
    policy = SwitchPolicy.scheduled_only()
    assert policy.scheduled and not policy.on_miss


def test_switch_on_miss_implies_scheduled():
    policy = SwitchPolicy.switch_on_miss()
    assert policy.scheduled and policy.on_miss


def test_on_miss_requires_rampage():
    policy = SwitchPolicy.switch_on_miss()
    with pytest.raises(ConfigurationError):
        policy.validate_for("conventional")
    policy.validate_for("rampage")  # no error


def test_scheduled_valid_for_both():
    policy = SwitchPolicy.scheduled_only()
    policy.validate_for("conventional")
    policy.validate_for("rampage")
