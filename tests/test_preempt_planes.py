"""Preemption-aware miss planes (``rampage-plane/2``).

The tentpole contract: switch-on-miss RAMpage and virtual-L1 machines
-- whose background page transfers and preemption points used to force
every sibling cell through a full simulation -- record a *decision-op
tape* alongside the transfer tape, and both phase-2 paths (the
event-filtered replay and the pure-arithmetic decoupled replay)
reproduce the unfiltered run **byte-for-byte** under any sibling issue
rate and Rambus timing.  Whole groups re-price in one
:func:`replay_group` call with identical bytes.  v2 artifacts
round-trip through disk with the full integrity discipline, and v1
artifacts stay readable.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.core.errors import CacheIntegrityError
from repro.core.observe import EventLog
from repro.core.params import RambusParams
from repro.systems.factory import (
    aggressive_l1,
    baseline_machine,
    rampage_machine,
    virtual_l1_machine,
)
from repro.systems.simulator import simulate
from repro.trace import filter as missplane
from repro.trace import materialize
from repro.trace.filter import (
    MANIFEST_NAME,
    PLANE_SCHEMA,
    PLANE_SCHEMA_V1,
    PlaneRecorder,
    PlaneReplayError,
    artifact_dir,
    get_plane,
    load_plane,
    plane_eligible,
    plane_key,
    replay_decoupled,
    replay_group,
    select_replay_mode,
    write_plane,
)
from repro.trace.materialize import get_workload

SCALE = 0.0002
SLICE_REFS = 4_000
SEED = 0
RATES = (2 * 10**8, 10**9, 4 * 10**9)
#: Two genuinely different Rambus timings beyond the recording default:
#: a slow part and a pipelined channel (which re-prices queued
#: background transfers differently from the recording).
DRAM_TIMINGS = (
    RambusParams(),
    RambusParams(access_ps=90_000, ps_per_beat=2_500),
    RambusParams(pipelined=True),
)


@pytest.fixture(autouse=True)
def fresh_registries():
    materialize.clear_registry()
    missplane.clear_registry()
    yield
    materialize.clear_registry()
    missplane.clear_registry()


def programs():
    return get_workload(SCALE, SEED, cache_dir=None).programs


def preempting_machines():
    return [
        (
            "rampage_som",
            lambda rate, dram: rampage_machine(
                rate, 1024, switch_on_miss=True, dram=dram
            ),
        ),
        (
            "vl1",
            lambda rate, dram: virtual_l1_machine(rate, 1024, dram=dram),
        ),
        (
            "vl1_som",
            lambda rate, dram: virtual_l1_machine(
                rate, 1024, switch_on_miss=True, dram=dram
            ),
        ),
    ]


def record_plane(params):
    recorder = PlaneRecorder(plane_key(params, SCALE, SEED, SLICE_REFS))
    result = simulate(
        params, programs(), slice_refs=SLICE_REFS, record_plane=recorder
    )
    return result, recorder.finalize()


# ----------------------------------------------------------------------
# Eligibility and mode selection
# ----------------------------------------------------------------------


def test_preempting_machines_are_plane_eligible():
    assert plane_eligible(rampage_machine(10**9, 1024, switch_on_miss=True))
    assert plane_eligible(virtual_l1_machine(10**9, 1024))
    assert plane_eligible(
        virtual_l1_machine(10**9, 1024, switch_on_miss=True)
    )


def test_select_replay_mode_policy():
    params = rampage_machine(10**9, 1024, switch_on_miss=True)
    assert select_replay_mode(params) == "plane"
    assert select_replay_mode(params, two_phase=False) == "full"
    assert select_replay_mode(params, materialize=False) == "full"
    assert select_replay_mode(params, require_cache=True) == "full"
    assert (
        select_replay_mode(params, cache_dir="/tmp/x", require_cache=True)
        == "plane"
    )
    assert (
        select_replay_mode(baseline_machine(10**9, 512, l1=aggressive_l1()))
        == "full"
    )


# ----------------------------------------------------------------------
# Three-way byte-identity: the acceptance criterion
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "label,build",
    preempting_machines(),
    ids=[m[0] for m in preempting_machines()],
)
def test_three_way_byte_identity_across_rates_and_dram(label, build):
    """Full simulation, event-filtered replay and decoupled arithmetic
    agree byte-for-byte for preempting machines, across issue rates
    *and* Rambus timings (including a pipelined channel, which prices
    queued background transfers differently than the recording did)."""
    params = build(10**9, RambusParams())
    recorded, plane = record_plane(params)
    # Preempting recordings carry a real decision-op tape; the
    # non-switching virtual-L1 machine never queues transfers, so its
    # plane is tape-only like any other non-preempting machine's.
    assert (len(plane.dops) > 0) == params.switch_on_miss
    plain = simulate(
        build(10**9, RambusParams()), programs(), slice_refs=SLICE_REFS
    )
    assert recorded.stats.as_dict() == plain.stats.as_dict()
    for rate in RATES:
        for dram in DRAM_TIMINGS:
            cell = build(rate, dram)
            expected = simulate(
                cell, programs(), slice_refs=SLICE_REFS
            ).stats.as_dict()
            filtered = simulate(
                cell, programs(), slice_refs=SLICE_REFS, replay_plane=plane
            )
            assert filtered.stats.as_dict() == expected
            decoupled = replay_decoupled(cell, plane)
            assert decoupled.stats.as_dict() == expected


@pytest.mark.parametrize(
    "label,build",
    preempting_machines(),
    ids=[m[0] for m in preempting_machines()],
)
def test_replay_group_matches_per_cell_decoupled(label, build):
    _, plane = record_plane(build(10**9, RambusParams()))
    cells = [build(rate, dram) for rate in RATES for dram in DRAM_TIMINGS]
    grouped = replay_group(cells, plane)
    for cell, result in zip(cells, grouped):
        assert (
            result.stats.as_dict()
            == replay_decoupled(cell, plane).stats.as_dict()
        )


def test_replay_group_matches_per_cell_on_tape_only_planes():
    """The vectorized matrix path (non-preempting planes) is
    byte-identical to the scalar per-cell pricing."""
    _, plane = record_plane(baseline_machine(10**9, 512))
    assert len(plane.dops) == 0
    cells = [
        baseline_machine(rate, 512, dram=dram)
        for rate in RATES
        for dram in DRAM_TIMINGS
    ]
    grouped = replay_group(cells, plane)
    for cell, result in zip(cells, grouped):
        assert (
            result.stats.as_dict()
            == replay_decoupled(cell, plane).stats.as_dict()
        )


def test_filtered_replay_rejects_structurally_mismatched_machine():
    """A preempting plane drives preemptions the non-preempting machine
    never takes; the filtered replay detects the divergence instead of
    silently producing wrong numbers."""
    _, plane = record_plane(rampage_machine(10**9, 1024, switch_on_miss=True))
    with pytest.raises(PlaneReplayError):
        simulate(
            rampage_machine(10**9, 1024),
            programs(),
            slice_refs=SLICE_REFS,
            replay_plane=plane,
        )


# ----------------------------------------------------------------------
# Disk artifacts: v2 round-trip, corruption, v1 back-compat
# ----------------------------------------------------------------------


def test_v2_plane_round_trips_through_disk(tmp_path):
    params = rampage_machine(10**9, 1024, switch_on_miss=True)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    assert manifest["schema"] == PLANE_SCHEMA
    assert manifest["dops"] == len(plane.dops)
    attached = load_plane(path)
    assert np.array_equal(attached.dops, plane.dops)
    assert np.array_equal(attached.chunks, plane.chunks)
    for rate in RATES:
        cell = rampage_machine(rate, 1024, switch_on_miss=True)
        assert (
            replay_decoupled(cell, attached).stats.as_dict()
            == replay_decoupled(cell, plane).stats.as_dict()
        )


@pytest.mark.parametrize(
    "damage",
    [
        lambda path: (path / "dops.npy").write_bytes(b"torn"),
        lambda path: (path / "dops.npy").unlink(),
        lambda path: np.save(
            path / "dops.npy", np.zeros((1, 3), dtype=np.int64)
        ),
    ],
    ids=["truncated-dops", "missing-dops", "swapped-dops"],
)
def test_corrupt_dops_is_quarantined_miss(tmp_path, damage):
    params = rampage_machine(10**9, 1024, switch_on_miss=True)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    damage(path)
    with pytest.raises(CacheIntegrityError):
        load_plane(path)
    events = EventLog()
    assert get_plane(plane.key, cache_dir=tmp_path, events=events) is None
    quarantined = events.of("plane_quarantined")
    assert len(quarantined) == 1
    assert quarantined[0]["reason"]
    assert not path.exists()


def test_cache_verify_validates_v2_checksums(tmp_path, capsys):
    params = rampage_machine(10**9, 1024, switch_on_miss=True)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
    # In-place bit-rot in the decision-op tape must fail verification.
    raw = bytearray((path / "dops.npy").read_bytes())
    raw[-1] ^= 0xFF
    (path / "dops.npy").write_bytes(bytes(raw))
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "dops.npy" in out


def _rewrite_as_v1(path) -> None:
    """Rewrite a committed non-preempting v2 artifact in v1 format:
    3-column chunk table, no decision-op tape, v1 schema tag."""
    manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    chunks = np.load(path / "chunks.npy")
    np.save(path / "chunks.npy", np.ascontiguousarray(chunks[:, :3]))
    (path / "dops.npy").unlink()
    manifest["schema"] = PLANE_SCHEMA_V1
    del manifest["dops"]
    del manifest["checksums"]["dops.npy"]
    manifest["checksums"]["chunks.npy"] = missplane._file_checksum(
        path / "chunks.npy"
    )
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", "utf-8"
    )


def test_v1_plane_stays_readable(tmp_path):
    """Backward compatibility: a v1 artifact (pre-preemption layout)
    loads, upgrades in memory (consumed = n_refs, empty dops) and
    replays identically to the v2 copy of the same recording."""
    params = rampage_machine(10**9, 1024)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    _rewrite_as_v1(path)
    v1 = load_plane(path)
    assert len(v1.dops) == 0
    assert np.array_equal(v1.chunks[:, 3], v1.chunks[:, 1])
    for rate in RATES:
        cell = rampage_machine(rate, 1024)
        expected = simulate(
            cell, programs(), slice_refs=SLICE_REFS
        ).stats.as_dict()
        assert replay_decoupled(cell, v1).stats.as_dict() == expected
        filtered = simulate(
            cell, programs(), slice_refs=SLICE_REFS, replay_plane=v1
        )
        assert filtered.stats.as_dict() == expected
    assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0


def test_v1_schema_tag_on_preempting_layout_is_rejected(tmp_path):
    """A v1 manifest must describe a v1 layout: the 4-column chunk
    table of a v2 artifact fails shape validation instead of silently
    misparsing."""
    params = rampage_machine(10**9, 1024)
    _, plane = record_plane(params)
    path = write_plane(artifact_dir(tmp_path, plane.key), plane)
    manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    manifest["schema"] = PLANE_SCHEMA_V1
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", "utf-8"
    )
    with pytest.raises(CacheIntegrityError):
        load_plane(path)


# ----------------------------------------------------------------------
# Recorded snapshot sanity
# ----------------------------------------------------------------------


def test_preempting_plane_snapshot_carries_overlap():
    """Switch-on-miss runs overlap DRAM transfers with execution; the
    recorded snapshot must carry those picoseconds (the v1 invariant
    that they are zero is exactly what the decision-op tape relaxes)."""
    _, plane = record_plane(rampage_machine(10**9, 1024, switch_on_miss=True))
    assert plane.stats["dram_overlap_ps"] > 0
    assert plane.stats["switches_on_miss"] > 0
    consumed = plane.chunks[:, 3]
    assert np.any(consumed < plane.chunks[:, 1])  # some chunks preempted


def test_dop_tape_scales_with_rambus_timing():
    """Same structure, different stall arithmetic: a slower Rambus part
    must not change the decision-op tape, only the re-priced times."""
    base = rampage_machine(10**9, 1024, switch_on_miss=True)
    slow = replace(
        base, dram=RambusParams(access_ps=90_000, ps_per_beat=2_500)
    )
    _, plane_a = record_plane(base)
    _, plane_b = record_plane(slow)
    # Full rows, including the absolute cycle counts: DRAM time lives
    # outside the cycle counter, so decision points land on identical
    # cycles whatever the Rambus part costs.
    assert np.array_equal(plane_a.dops, plane_b.dops)
    assert np.array_equal(plane_a.tape, plane_b.tape)
