"""Tests for the inverted page table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SimulationError
from repro.mem.inverted_page_table import FREE, InvertedPageTable


class TestBasics:
    def test_lookup_empty(self):
        ipt = InvertedPageTable(8)
        frame, probes = ipt.lookup(42)
        assert frame == FREE
        assert probes >= 1

    def test_insert_then_lookup(self):
        ipt = InvertedPageTable(8)
        ipt.insert(42, 3)
        frame, probes = ipt.lookup(42)
        assert frame == 3
        assert probes >= 1

    def test_remove_frame(self):
        ipt = InvertedPageTable(8)
        ipt.insert(42, 3)
        vpn, probes = ipt.remove_frame(3)
        assert vpn == 42
        assert ipt.lookup(42)[0] == FREE
        assert ipt.vpn_of(3) == FREE

    def test_insert_into_occupied_frame_raises(self):
        ipt = InvertedPageTable(8)
        ipt.insert(1, 0)
        with pytest.raises(SimulationError):
            ipt.insert(2, 0)

    def test_remove_free_frame_raises(self):
        ipt = InvertedPageTable(8)
        with pytest.raises(SimulationError):
            ipt.remove_frame(5)

    def test_entry_count(self):
        ipt = InvertedPageTable(8)
        for frame in range(5):
            ipt.insert(frame * 1000, frame)
        assert ipt.entries == 5
        ipt.remove_frame(2)
        assert ipt.entries == 4


class TestChains:
    def test_colliding_vpns_chain(self):
        """Force vpns into the same bucket and check chain traversal."""
        ipt = InvertedPageTable(4)  # 4 buckets
        # Find vpns sharing a bucket.
        target = ipt._bucket(0)
        colliders = [v for v in range(10_000) if ipt._bucket(v) == target][:3]
        assert len(colliders) == 3
        for frame, vpn in enumerate(colliders):
            ipt.insert(vpn, frame)
        for frame, vpn in enumerate(colliders):
            found, probes = ipt.lookup(vpn)
            assert found == frame
        # Deepest element requires more probes than the chain head.
        _, head_probes = ipt.lookup(colliders[-1])  # inserted last = head
        _, tail_probes = ipt.lookup(colliders[0])
        assert tail_probes >= head_probes

    def test_remove_middle_of_chain(self):
        ipt = InvertedPageTable(4)
        target = ipt._bucket(0)
        colliders = [v for v in range(10_000) if ipt._bucket(v) == target][:3]
        for frame, vpn in enumerate(colliders):
            ipt.insert(vpn, frame)
        ipt.remove_frame(1)  # middle by insertion order
        assert ipt.lookup(colliders[1])[0] == FREE
        assert ipt.lookup(colliders[0])[0] == 0
        assert ipt.lookup(colliders[2])[0] == 2
        ipt.check_invariants()

    def test_mean_probes_tracks(self):
        ipt = InvertedPageTable(16)
        ipt.insert(1, 0)
        ipt.lookup(1)
        assert ipt.mean_probes >= 1.0

    def test_hash_spreads_sequential_vpns(self):
        """Dense sequential vpn runs must not cluster (regression for
        the >>7 hash bug that produced 6+ mean probes)."""
        ipt = InvertedPageTable(4096)
        base = 0x2000_0000 >> 7
        for frame in range(2048):
            ipt.insert(base + frame, frame)
        probes = [ipt.lookup(base + frame)[1] for frame in range(2048)]
        assert sum(probes) / len(probes) < 1.8


@settings(max_examples=30)
@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=2**30), unique=True, min_size=1, max_size=64
    )
)
def test_property_insert_lookup_remove(vpns):
    """Any set of distinct vpns round-trips through the table."""
    ipt = InvertedPageTable(64)
    for frame, vpn in enumerate(vpns):
        ipt.insert(vpn, frame)
    ipt.check_invariants()
    for frame, vpn in enumerate(vpns):
        assert ipt.lookup(vpn)[0] == frame
    for frame, vpn in enumerate(vpns):
        removed, _ = ipt.remove_frame(frame)
        assert removed == vpn
    ipt.check_invariants()
    assert ipt.entries == 0
