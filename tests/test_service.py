"""Tests for the sweep service's job store and scheduler.

The contracts under test: job keys are idempotent (same cells, same
job), the journal is an append-only source of truth that survives torn
writes and process death, and the scheduler never simulates a cell that
the cache or in-flight work already covers.
"""

import json
import threading

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.service.jobs import (
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    JobSpec,
    JobStore,
    job_key,
    plan_cells,
)
from repro.service.scheduler import BackpressureError, SweepScheduler
from repro.trace import materialize


@pytest.fixture(autouse=True)
def fresh_trace_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


def base_config(cache_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


def spec(labels=("baseline", "rampage"), **overrides):
    fields = dict(
        labels=tuple(labels),
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def journal_ops(store):
    return [
        json.loads(line)["op"]
        for line in store.path.read_text("utf-8").splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Specs, planning, keys
# ----------------------------------------------------------------------


def test_spec_rejects_unknown_labels_and_empty():
    with pytest.raises(ConfigurationError, match="unknown grid labels"):
        spec(labels=("nope",))
    with pytest.raises(ConfigurationError, match="at least one"):
        spec(labels=())


def test_spec_from_request_defaults_and_round_trip(tmp_path):
    base = base_config(tmp_path)
    parsed = JobSpec.from_request({"labels": "baseline,rampage"}, base)
    assert parsed.labels == ("baseline", "rampage")
    assert parsed.scale == base.scale
    assert parsed.issue_rates == base.issue_rates
    assert JobSpec.from_dict(parsed.as_dict()) == parsed
    with pytest.raises(ConfigurationError, match="malformed"):
        JobSpec.from_request({"scale": "not-a-number"}, base)
    with pytest.raises(ConfigurationError, match="must be an object"):
        JobSpec.from_request([1, 2], base)


def test_plan_cells_dedups_by_cache_key(tmp_path):
    base = base_config(tmp_path)
    cells = plan_cells(spec(), base)
    assert len(cells) == 4  # 2 labels x 1 rate x 2 sizes
    assert len({cell.key for cell in cells}) == 4
    # A duplicated label contributes nothing new.
    doubled = plan_cells(spec(labels=("baseline", "baseline")), base)
    assert len(doubled) == 2


def test_job_key_is_idempotent_and_label_order_insensitive(tmp_path):
    base = base_config(tmp_path)
    a = job_key(spec(), plan_cells(spec(), base))
    b = job_key(
        spec(labels=("rampage", "baseline")),
        plan_cells(spec(labels=("rampage", "baseline")), base),
    )
    assert a == b
    other = spec(seed=1)
    assert job_key(other, plan_cells(other, base)) != a


# ----------------------------------------------------------------------
# JobStore + journal
# ----------------------------------------------------------------------


def test_submit_is_idempotent_and_journals_once(tmp_path):
    base = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    cells = plan_cells(spec(), base)
    job, created = store.submit(spec(), cells)
    again, created_again = store.submit(spec(), cells)
    assert created and not created_again
    assert again is job
    assert journal_ops(store) == ["submit"]
    assert job.total == 4
    assert job.status == QUEUED


def test_failed_jobs_can_be_resubmitted(tmp_path):
    base = base_config(tmp_path / "cache")
    store = JobStore(tmp_path / "state")
    cells = plan_cells(spec(), base)
    job, _ = store.submit(spec(), cells)
    store.mark_running(job.id)
    store.mark_failed(job.id, "boom")
    assert store.get(job.id).status == FAILED
    retried, created = store.submit(spec(), cells)
    assert created
    assert retried.status == QUEUED
    assert retried.error is None


def test_journal_recovery_round_trips_progress(tmp_path):
    base = base_config(tmp_path / "cache")
    first = JobStore(tmp_path / "state")
    cells = plan_cells(spec(), base)
    job, _ = first.submit(spec(), cells)
    first.mark_running(job.id)
    first.record_cell(job.id, cells[0].key, "full")
    first.record_cell(job.id, cells[0].key, "full")  # dedup by key

    second = JobStore(tmp_path / "state")
    resumed = second.recover()
    assert [item.id for item in resumed] == [job.id]
    recovered = second.get(job.id)
    assert recovered.status == QUEUED  # running at crash -> re-queued
    assert recovered.done == 1
    assert recovered.modes == {"full": 1}
    assert recovered.total == 4


def test_completed_jobs_recover_completed(tmp_path):
    base = base_config(tmp_path / "cache")
    first = JobStore(tmp_path / "state")
    cells = plan_cells(spec(), base)
    job, _ = first.submit(spec(), cells)
    first.mark_running(job.id)
    for cell in cells:
        first.record_cell(job.id, cell.key, "full")
    first.mark_completed(job.id)

    second = JobStore(tmp_path / "state")
    assert second.recover() == []
    recovered = second.get(job.id)
    assert recovered.status == COMPLETED
    assert recovered.done == recovered.total == 4


def test_recovery_skips_torn_trailing_line_and_garbage(tmp_path):
    base = base_config(tmp_path / "cache")
    first = JobStore(tmp_path / "state")
    job, _ = first.submit(spec(), plan_cells(spec(), base))
    with open(first.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"op": "cell", "id": "' + job.id)  # kill -9 mid-append

    second = JobStore(tmp_path / "state")
    resumed = second.recover()
    assert [item.id for item in resumed] == [job.id]
    assert second.get(job.id).done == 0


# ----------------------------------------------------------------------
# Scheduler: dedup, coalescing, recovery, backpressure
# ----------------------------------------------------------------------


def make_scheduler(tmp_path, **kwargs):
    store = JobStore(tmp_path / "state")
    scheduler = SweepScheduler(
        store, base_config(tmp_path / "cache"), workers=1, **kwargs
    )
    return store, scheduler


def test_scheduler_executes_job_and_counts_modes(tmp_path):
    store, scheduler = make_scheduler(tmp_path)
    scheduler.start()
    try:
        job, created = scheduler.submit(spec())
        assert created
        final = scheduler.wait(job.id, timeout=120)
        assert final.status == COMPLETED
        assert final.done == final.total == 4
        # Two-phase coalescing: one recorded representative per plane
        # group, no unplaned full simulations.
        assert final.modes.get("full", 0) == 0
        assert sum(final.modes.values()) == 4
    finally:
        scheduler.stop(timeout=30)


def test_scheduler_reports_replayed_mode_for_sibling_cells(tmp_path):
    """A preempting (switch-on-miss) grid swept across issue rates
    records one plane-group representative and re-prices the sibling as
    ``mode=replayed`` -- and both modes surface in the job's counts."""
    store, scheduler = make_scheduler(tmp_path)
    scheduler.start()
    try:
        job, created = scheduler.submit(
            spec(
                labels=("rampage_som",),
                issue_rates=(2 * 10**8, 10**9),
                sizes=(1024,),
            )
        )
        assert created
        final = scheduler.wait(job.id, timeout=120)
        assert final.status == COMPLETED
        assert final.modes == {"recorded": 1, "replayed": 1}
    finally:
        scheduler.stop(timeout=30)


def test_duplicate_submit_reuses_the_completed_job(tmp_path):
    store, scheduler = make_scheduler(tmp_path)
    scheduler.start()
    try:
        job, _ = scheduler.submit(spec())
        scheduler.wait(job.id, timeout=120)
        ops_before = journal_ops(store)
        again, created = scheduler.submit(spec())
        assert not created
        assert again.id == job.id
        assert again.status == COMPLETED
        # Zero new journal activity => zero new simulations.
        assert journal_ops(store) == ops_before
    finally:
        scheduler.stop(timeout=30)


def test_overlapping_grid_is_served_entirely_from_cache(tmp_path):
    """Scheduler dedup: a second job whose cells are a subset of an
    earlier job's completes with zero ``full``/``recorded`` cells --
    every cell is a cache hit."""
    store, scheduler = make_scheduler(tmp_path)
    scheduler.start()
    try:
        first, _ = scheduler.submit(spec())
        scheduler.wait(first.id, timeout=120)
        subset, created = scheduler.submit(spec(labels=("baseline",)))
        assert created and subset.id != first.id
        final = scheduler.wait(subset.id, timeout=120)
        assert final.status == COMPLETED
        assert final.modes == {"cached": 2}
    finally:
        scheduler.stop(timeout=30)


def test_journal_crash_recovery_resumes_without_resimulating(tmp_path):
    """Acceptance: kill between commit and ack.  The run records hit
    the cache but the journal never saw the cell/done ops (its tail is
    the torn ack).  On restart the job resumes and finishes entirely
    from the cache -- zero ``mode=full`` cells."""
    store, scheduler = make_scheduler(tmp_path)
    scheduler.start()
    job, _ = scheduler.submit(spec())
    assert scheduler.wait(job.id, timeout=120).status == COMPLETED
    scheduler.stop(timeout=30)

    # Rewind the journal to just the submission -- everything after the
    # commit of the records is lost, as after a SIGKILL mid-ack.
    lines = store.path.read_text("utf-8").splitlines()
    submit_line = next(
        line for line in lines if json.loads(line)["op"] == "submit"
    )
    store.path.write_text(submit_line + "\n", "utf-8")

    store2 = JobStore(tmp_path / "state")
    scheduler2 = SweepScheduler(
        store2, base_config(tmp_path / "cache"), workers=1
    )
    resumed = scheduler2.start()
    try:
        assert [item.id for item in resumed] == [job.id]
        final = scheduler2.wait(job.id, timeout=120)
        assert final.status == COMPLETED
        assert final.done == final.total == 4
        # Every cell came back from the record cache; nothing re-ran.
        assert final.modes == {"cached": 4}
    finally:
        scheduler2.stop(timeout=30)


def test_backpressure_bounds_the_admission_queue(tmp_path):
    store, scheduler = make_scheduler(tmp_path, queue_limit=1)
    gate = threading.Event()
    release = threading.Event()

    def blocked_execute(job):
        store.mark_running(job.id)
        gate.set()
        release.wait(30)
        store.mark_completed(job.id)

    scheduler._execute = blocked_execute
    scheduler.start()
    try:
        first, created = scheduler.submit(spec())
        assert created
        assert gate.wait(10)
        assert store.get(first.id).status == RUNNING
        # The queue is full; a *new* job bounces with retry advice...
        with pytest.raises(BackpressureError) as excinfo:
            scheduler.submit(spec(seed=1))
        assert excinfo.value.retry_after > 0
        # ...but resubmitting the in-flight job stays idempotent.
        again, created_again = scheduler.submit(spec())
        assert not created_again and again.id == first.id
        release.set()
        assert scheduler.wait(first.id, timeout=30).status == COMPLETED
        second, created = scheduler.submit(spec(seed=1))
        assert created
        assert scheduler.wait(second.id, timeout=30).status == COMPLETED
    finally:
        release.set()
        scheduler.stop(timeout=30)


def test_failed_jobs_are_journalled_not_fatal(tmp_path):
    store, scheduler = make_scheduler(tmp_path)

    def exploding_execute(job):
        store.mark_running(job.id)
        raise RuntimeError("simulator exploded")

    def execute_with_failure(job):
        try:
            exploding_execute(job)
        except Exception as exc:
            store.mark_failed(job.id, str(exc))

    scheduler._execute = execute_with_failure
    scheduler.start()
    try:
        job, _ = scheduler.submit(spec())
        final = scheduler.wait(job.id, timeout=30)
        assert final.status == FAILED
        assert "exploded" in final.error
        # The worker thread survived; a healthy job still runs.
        del scheduler._execute  # restore the real implementation
        retried, created = scheduler.submit(spec())
        assert created and retried.id == job.id
        assert scheduler.wait(job.id, timeout=120).status == COMPLETED
    finally:
        scheduler.stop(timeout=30)


def test_scheduler_real_failure_path_marks_failed(tmp_path, monkeypatch):
    store, scheduler = make_scheduler(tmp_path)
    monkeypatch.setattr(
        "repro.service.scheduler.ParallelRunner",
        lambda *args, **kwargs: (_ for _ in ()).throw(RuntimeError("no pool")),
    )
    scheduler.start()
    try:
        job, _ = scheduler.submit(spec())
        final = scheduler.wait(job.id, timeout=30)
        assert final.status == FAILED
        assert "no pool" in final.error
    finally:
        scheduler.stop(timeout=30)


def test_dedup_preview_classifies_cells(tmp_path):
    store, scheduler = make_scheduler(tmp_path)
    cells = plan_cells(spec(), scheduler.config)
    preview = scheduler.dedup_preview(cells)
    assert preview == {"total": 4, "cached": 0, "inflight": 0, "fresh": 4}
    scheduler.start()
    try:
        job, _ = scheduler.submit(spec())
        scheduler.wait(job.id, timeout=120)
    finally:
        scheduler.stop(timeout=30)
    preview = scheduler.dedup_preview(cells)
    assert preview == {"total": 4, "cached": 4, "inflight": 0, "fresh": 0}


def test_graceful_stop_leaves_queued_jobs_resumable(tmp_path):
    store, scheduler = make_scheduler(tmp_path)
    # Never start the worker: submissions stay queued, as they would if
    # SIGTERM landed before the worker picked them up.
    job, _ = scheduler.submit(spec())
    scheduler.stop(timeout=5)
    store2 = JobStore(tmp_path / "state")
    resumed = store2.recover()
    assert [item.id for item in resumed] == [job.id]
    assert store2.get(job.id).status == QUEUED


# ----------------------------------------------------------------------
# PR-7 concurrency and input-handling regressions
# ----------------------------------------------------------------------


def test_from_request_strips_label_whitespace(tmp_path):
    base = base_config(tmp_path)
    # "baseline, rampage" is a label list with breathing room, not an
    # unknown grid called " rampage".
    parsed = JobSpec.from_request({"labels": "baseline, rampage"}, base)
    assert parsed.labels == ("baseline", "rampage")
    parsed = JobSpec.from_request(
        {"labels": ["  baseline ", "rampage", " "]}, base
    )
    assert parsed.labels == ("baseline", "rampage")
    with pytest.raises(ConfigurationError, match="at least one"):
        JobSpec.from_request({"labels": " , ,"}, base)


def test_dedup_preview_is_safe_against_concurrent_execution(tmp_path):
    """Hammer submit/preview concurrently: the preview must snapshot
    ``_inflight`` under the scheduler lock, never iterate the live set
    the worker thread is swapping."""
    store, scheduler = make_scheduler(tmp_path)
    cells = plan_cells(spec(), scheduler.config)
    errors = []
    done = threading.Event()

    def hammer():
        while not done.is_set():
            try:
                preview = scheduler.dedup_preview(cells)
            except RuntimeError as exc:  # set changed size during iteration
                errors.append(exc)
                return
            total = (
                preview["cached"] + preview["inflight"] + preview["fresh"]
            )
            if total != preview["total"]:
                errors.append(AssertionError(preview))
                return

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    scheduler.start()
    try:
        job, _ = scheduler.submit(spec())
        scheduler.wait(job.id, timeout=120)
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=10)
        scheduler.stop(timeout=30)
    assert errors == []


def test_failed_resubmit_recovers_to_exactly_one_queued_job(tmp_path):
    """A journal holding submit/fail/submit for one id replays to one
    queued job -- no double-queue, no duplicate id in the registry."""
    base = base_config(tmp_path / "cache")
    first = JobStore(tmp_path / "state")
    cells = plan_cells(spec(), base)
    job, _ = first.submit(spec(), cells)
    first.mark_running(job.id)
    first.record_cell(job.id, cells[0].key, "full")
    first.mark_failed(job.id, "boom")
    retried, created = first.submit(spec(), cells)
    assert created and retried.id == job.id
    assert journal_ops(first).count("submit") == 2

    second = JobStore(tmp_path / "state")
    resumed = second.recover()
    assert [item.id for item in resumed] == [job.id]  # exactly once
    assert [item.id for item in second.jobs()] == [job.id]
    recovered = second.get(job.id)
    assert recovered.status == QUEUED
    assert recovered.error is None
    # The failed incarnation's progress was superseded by the resubmit.
    assert recovered.done == 0

    # The scheduler re-queues it exactly once too: no duplicate
    # execution, no duplicate SSE terminal event.
    scheduler = SweepScheduler(
        JobStore(tmp_path / "state"),
        base_config(tmp_path / "cache"),
        workers=1,
    )
    channel = scheduler.subscribe(job.id)
    resumed = scheduler.start()
    try:
        assert [item.id for item in resumed] == [job.id]
        final = scheduler.wait(job.id, timeout=120)
        assert final.status == COMPLETED
    finally:
        scheduler.stop(timeout=30)
    events = []
    while not channel.empty():
        events.append(channel.get_nowait()["event"])
    assert events.count("job_completed") == 1
    assert events.count("job_running") == 1
