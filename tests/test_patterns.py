"""Tests for the address-pattern primitives."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.trace import patterns


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBranchyCode:
    def test_length_and_range(self):
        addrs = patterns.branchy_code(rng(), 1000, code_bytes=8192, base=0x400000)
        assert len(addrs) == 1000
        assert addrs.min() >= 0x400000
        assert addrs.max() < 0x400000 + 8192

    def test_word_aligned(self):
        addrs = patterns.branchy_code(rng(), 500, code_bytes=4096)
        assert np.all(addrs % 4 == 0)

    def test_mostly_sequential(self):
        addrs = patterns.branchy_code(rng(), 2000, code_bytes=65536, mean_run=16)
        deltas = np.diff(addrs.astype(np.int64))
        sequential = np.count_nonzero(deltas == 4)
        assert sequential / len(deltas) > 0.7

    def test_deterministic(self):
        a = patterns.branchy_code(rng(42), 300, 4096)
        b = patterns.branchy_code(rng(42), 300, 4096)
        assert np.array_equal(a, b)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            patterns.branchy_code(rng(), 0, 4096)


class TestStreams:
    def test_sequential_advances_by_word(self):
        addrs = patterns.sequential_stream(10, region_bytes=4096, base=100)
        assert list(addrs) == [100 + 4 * i for i in range(10)]

    def test_sequential_wraps(self):
        addrs = patterns.sequential_stream(5, region_bytes=8, start=4)
        assert list(addrs) == [4, 0, 4, 0, 4]

    def test_strided_stride(self):
        addrs = patterns.strided_stream(4, region_bytes=4096, stride_bytes=512)
        assert list(addrs) == [0, 512, 1024, 1536]

    def test_strided_wraps(self):
        addrs = patterns.strided_stream(3, region_bytes=1024, stride_bytes=512)
        assert list(addrs) == [0, 512, 0]


class TestHotSet:
    def test_in_region_and_aligned(self):
        addrs = patterns.hot_set(rng(), 1000, region_bytes=4096, base=64)
        assert addrs.min() >= 64
        assert addrs.max() < 64 + 4096
        assert np.all((addrs - 64) % 4 == 0)

    def test_focus_concentrates_traffic(self):
        addrs = patterns.hot_set(
            rng(1), 10_000, region_bytes=65536, focus=0.8, core_frac=0.125
        )
        core = np.count_nonzero(addrs < 65536 // 8)
        assert core / len(addrs) > 0.75

    def test_zero_focus_is_uniform_ish(self):
        addrs = patterns.hot_set(
            rng(1), 10_000, region_bytes=65536, focus=0.0, core_frac=0.125
        )
        core = np.count_nonzero(addrs < 65536 // 8)
        assert 0.08 < core / len(addrs) < 0.17

    def test_rejects_bad_focus(self):
        with pytest.raises(ConfigurationError):
            patterns.hot_set(rng(), 10, 4096, focus=1.5)
        with pytest.raises(ConfigurationError):
            patterns.hot_set(rng(), 10, 4096, core_frac=0.0)


class TestPointerChase:
    def test_visits_distinct_nodes(self):
        addrs = patterns.pointer_chase(rng(3), 100, region_bytes=8192, node_bytes=32)
        # A permutation walk of 256 nodes: the first 100 steps are distinct.
        assert len(set(addrs.tolist())) == 100

    def test_node_alignment(self):
        addrs = patterns.pointer_chase(rng(3), 50, region_bytes=4096, node_bytes=64)
        assert np.all(addrs % 64 == 0)

    def test_walk_continues_deterministically(self):
        a = patterns.pointer_chase(rng(5), 200, 4096)
        b = patterns.pointer_chase(rng(5), 200, 4096)
        assert np.array_equal(a, b)


class TestMixture:
    def test_weights_respected_roughly(self):
        parts = [
            np.zeros(1000, dtype=np.uint64),
            np.ones(1000, dtype=np.uint64),
        ]
        out = patterns.mixture(rng(7), parts, [0.9, 0.1], 5000)
        ones = int(out.sum())
        assert 300 < ones < 800  # ~10% of 5000

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            patterns.mixture(rng(), [np.zeros(1, dtype=np.uint64)], [0.5, 0.5], 10)

    def test_rejects_empty_part(self):
        parts = [np.zeros(0, dtype=np.uint64), np.ones(10, dtype=np.uint64)]
        with pytest.raises(ConfigurationError):
            patterns.mixture(rng(11), parts, [1.0, 1.0], 50)
