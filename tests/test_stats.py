"""Tests for counters and level-time breakdown."""

import pytest

from repro.core.stats import LevelTimes, SimStats


class TestLevelTimes:
    def test_total(self):
        lt = LevelTimes()
        lt.l1i = 10
        lt.dram = 30
        assert lt.total == 40

    def test_fractions_sum_to_one(self):
        lt = LevelTimes()
        lt.l1i, lt.l1d, lt.l2, lt.dram = 1, 2, 3, 4
        fractions = lt.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["dram"] == pytest.approx(0.4)

    def test_empty_fractions_are_zero(self):
        assert all(v == 0.0 for v in LevelTimes().fractions().values())

    def test_as_dict_keys(self):
        assert set(LevelTimes().as_dict()) == {"l1i", "l1d", "l2", "dram", "other"}


class TestSimStats:
    def test_workload_refs(self):
        stats = SimStats(ifetches=10, reads=5, writes=3)
        assert stats.workload_refs == 18

    def test_overhead_excludes_switch_refs(self):
        """Figure 4 counts TLB + fault handler refs only."""
        stats = SimStats(
            ifetches=100,
            tlb_handler_refs=30,
            fault_handler_refs=20,
            switch_refs=400,
        )
        assert stats.overhead_refs == 50
        assert stats.overhead_ratio == pytest.approx(0.5)

    def test_overhead_ratio_zero_refs(self):
        assert SimStats().overhead_ratio == 0.0

    def test_miss_rates(self):
        stats = SimStats(l1i_hits=90, l1i_misses=10, tlb_hits=3, tlb_misses=1)
        assert stats.miss_rate("l1i") == pytest.approx(0.1)
        assert stats.miss_rate("tlb") == pytest.approx(0.25)
        assert stats.miss_rate("l2") == 0.0  # no references yet

    def test_miss_rate_unknown_level(self):
        with pytest.raises(KeyError):
            SimStats().miss_rate("l9")

    def test_as_dict_round_trips_level_times(self):
        stats = SimStats()
        stats.level_times.dram = 123
        data = stats.as_dict()
        assert data["level_times"]["dram"] == 123
        assert data["total_time_ps"] == 123
