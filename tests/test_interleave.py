"""Tests for the multiprogramming interleaver."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.trace.benchmarks import table2_catalog
from repro.trace.interleave import InterleavedWorkload, ProgramStream
from repro.trace.record import TraceChunk
from repro.trace.synthetic import SyntheticProgram


def make_programs(n=3, refs=1000, chunk_refs=128):
    specs = list(table2_catalog().values())
    return [
        SyntheticProgram(specs[i], total_refs=refs, pid=i, seed=i, chunk_refs=chunk_refs)
        for i in range(n)
    ]


class TestProgramStream:
    def test_take_respects_limit(self):
        stream = ProgramStream(make_programs(1)[0])
        chunk = stream.take(50)
        assert len(chunk) == 50
        assert stream.consumed == 50

    def test_exhaustion(self):
        stream = ProgramStream(make_programs(1, refs=100)[0])
        total = 0
        while not stream.exhausted:
            chunk = stream.take(64)
            if chunk is None:
                break
            total += len(chunk)
        assert total == 100
        assert stream.exhausted

    def test_push_back_replays(self):
        stream = ProgramStream(make_programs(1)[0])
        chunk = stream.take(10)
        stream.push_back(chunk)
        again = stream.take(10)
        assert np.array_equal(chunk.addrs, again.addrs)
        assert stream.consumed == 10

    def test_push_back_wrong_pid_rejected(self):
        stream = ProgramStream(make_programs(1)[0])
        stream.take(4)
        alien = TraceChunk(
            pid=99,
            kinds=np.zeros(2, dtype=np.uint8),
            addrs=np.zeros(2, dtype=np.uint64),
        )
        with pytest.raises(ConfigurationError):
            stream.push_back(alien)

    def test_take_rejects_nonpositive(self):
        stream = ProgramStream(make_programs(1)[0])
        with pytest.raises(ConfigurationError):
            stream.take(0)


class TestInterleavedWorkload:
    def test_consumes_everything(self):
        workload = InterleavedWorkload(make_programs(3, refs=1000), slice_refs=300)
        total = sum(len(chunk) for chunk in workload.chunks())
        assert total == 3000

    def test_round_robin_slice_order(self):
        workload = InterleavedWorkload(
            make_programs(3, refs=600, chunk_refs=100), slice_refs=200
        )
        pid_sequence = []
        for chunk in workload.chunks():
            if not pid_sequence or pid_sequence[-1] != chunk.pid:
                pid_sequence.append(chunk.pid)
        assert pid_sequence == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_new_slice_flags(self):
        workload = InterleavedWorkload(
            make_programs(2, refs=400, chunk_refs=100), slice_refs=200
        )
        chunks = list(workload.chunks())
        boundaries = [c.new_slice for c in chunks]
        # Slice = 200 refs = two 100-ref chunks: flags alternate.
        assert boundaries == [True, False] * 4

    def test_slice_lengths_respected(self):
        workload = InterleavedWorkload(make_programs(2, refs=1000), slice_refs=300)
        current = 0
        for chunk in workload.chunks():
            if chunk.new_slice:
                if current:
                    assert current <= 300
                current = 0
            current += len(chunk)

    def test_preempt_pushes_back_and_rotates(self):
        workload = InterleavedWorkload(
            make_programs(3, refs=500, chunk_refs=100), slice_refs=500
        )
        first = workload.next_chunk()
        assert first.pid == 0
        tail = TraceChunk(pid=0, kinds=first.kinds[50:], addrs=first.addrs[50:])
        workload.preempt(tail)
        nxt = workload.next_chunk()
        assert nxt.pid == 1
        assert nxt.new_slice
        # Total consumption is still exact.
        consumed = 50 + len(nxt) + sum(len(c) for c in workload.chunks())
        assert consumed == 1500

    def test_exhausted_programs_drop_out(self):
        programs = make_programs(2, refs=100) + make_programs(1, refs=2000)[0:0]
        specs = list(table2_catalog().values())
        long_prog = SyntheticProgram(specs[5], total_refs=2000, pid=9, seed=9)
        workload = InterleavedWorkload(programs + [long_prog], slice_refs=100)
        pids = [chunk.pid for chunk in workload.chunks()]
        # After the short programs drain, only pid 9 appears.
        tail = pids[-10:]
        assert set(tail) == {9}

    def test_duplicate_pids_rejected(self):
        programs = make_programs(2)
        programs[1].pid = programs[0].pid
        with pytest.raises(ConfigurationError):
            InterleavedWorkload(programs)

    def test_empty_program_list_rejected(self):
        with pytest.raises(ConfigurationError):
            InterleavedWorkload([])

    def test_total_consumed_tracking(self):
        workload = InterleavedWorkload(make_programs(2, refs=300), slice_refs=100)
        list(workload.chunks())
        assert workload.total_consumed() == 600
