"""Tests for the bus timing derivation."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import BusParams, CacheParams, KIB, L1Params, MachineParams
from repro.mem.bus import (
    check_consistency,
    derived_miss_penalty_cycles,
    derived_rampage_writeback_cycles,
    transfer_cycles,
)
from repro.systems.factory import build_system


def test_paper_default_is_12_cycles():
    # 32 B over a 16 B bus = 2 data beats + 2 overhead, x3 = 12 (§4.4).
    assert derived_miss_penalty_cycles(BusParams(), L1Params()) == 12


def test_paper_rampage_writeback_is_9_cycles():
    # One less overhead beat: no L2 tag to update (§4.3).
    assert derived_rampage_writeback_cycles(BusParams(), L1Params()) == 9


def test_transfer_cycles_rounds_beats_up():
    bus = BusParams()
    assert transfer_cycles(bus, 1) == transfer_cycles(bus, 16)
    assert transfer_cycles(bus, 17) == transfer_cycles(bus, 32)


def test_transfer_rejects_bad_input():
    with pytest.raises(ConfigurationError):
        transfer_cycles(BusParams(), 0)
    with pytest.raises(ConfigurationError):
        transfer_cycles(BusParams(), 16, overhead_beats=-1)


def test_consistency_accepts_defaults():
    check_consistency(BusParams(), L1Params())


def test_consistency_rejects_contradiction():
    with pytest.raises(ConfigurationError):
        check_consistency(BusParams(width_bits=256), L1Params())
    with pytest.raises(ConfigurationError):
        check_consistency(BusParams(), L1Params(miss_penalty_cycles=10))


def test_systems_enforce_consistency():
    params = MachineParams(
        kind="conventional",
        l1=L1Params(miss_penalty_cycles=20),
    )
    with pytest.raises(ConfigurationError):
        build_system(params)


def test_wider_l1_block_needs_matching_penalties():
    """A 64-byte L1 block is legal once the penalties follow the bus."""
    l1 = L1Params(
        icache=CacheParams(16 * KIB, 64),
        dcache=CacheParams(16 * KIB, 64),
        miss_penalty_cycles=18,  # (4 data + 2 overhead) x 3
        writeback_cycles=18,
        rampage_writeback_cycles=15,  # (4 + 1) x 3
    )
    check_consistency(BusParams(), l1)
    build_system(MachineParams(kind="conventional", l1=l1))
