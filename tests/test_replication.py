"""Tests for multi-seed replication statistics."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import (
    ReplicationResult,
    compare,
    replicate,
)
from repro.systems.factory import baseline_machine, rampage_machine

TINY = ExperimentConfig(scale=0.0001, slice_refs=2_000, cache_dir=None)


class TestReplicationResult:
    def test_mean_std(self):
        result = ReplicationResult.from_values([1.0, 2.0, 3.0])
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(1.0)
        assert result.ci95_low < 2.0 < result.ci95_high

    def test_ci_narrows_with_more_samples(self):
        few = ReplicationResult.from_values([1.0, 2.0, 3.0])
        many = ReplicationResult.from_values([1.0, 2.0, 3.0] * 5)
        assert (many.ci95_high - many.ci95_low) < (few.ci95_high - few.ci95_low)

    def test_needs_two_values(self):
        with pytest.raises(ConfigurationError):
            ReplicationResult.from_values([1.0])

    def test_overlap_detection(self):
        a = ReplicationResult.from_values([1.0, 1.1, 0.9])
        b = ReplicationResult.from_values([1.05, 1.15, 0.95])
        c = ReplicationResult.from_values([5.0, 5.1, 4.9])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_relative_std(self):
        result = ReplicationResult.from_values([2.0, 2.0, 2.0])
        assert result.relative_std == 0.0


class TestReplicate:
    def test_replicate_returns_per_seed_values(self):
        result = replicate(
            baseline_machine(10**9, 1024), TINY, seeds=(0, 1, 2)
        )
        assert len(result.values) == 3
        assert all(v > 0 for v in result.values)
        # Different seeds give different (but similar) workloads.
        assert len(set(result.values)) > 1
        assert result.relative_std < 0.25

    def test_custom_metric(self):
        result = replicate(
            baseline_machine(10**9, 1024),
            TINY,
            seeds=(0, 1),
            metric=lambda r: float(r.stats.l2_misses),
        )
        assert all(v == int(v) for v in result.values)

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            replicate(baseline_machine(10**9, 1024), TINY, seeds=(0, 1, 0))

    def test_events_emitted(self):
        from repro.core.observe import EventLog

        events = EventLog()
        replicate(
            baseline_machine(10**9, 1024), TINY, seeds=(0, 1), events=events
        )
        assert [e["event"] for e in events.events] == [
            "replication_started",
            "replication_completed",
        ]
        assert events.events[1]["mean"] > 0


class TestCompare:
    def test_compare_structure(self):
        outcome = compare(
            baseline_machine(10**9, 1024),
            rampage_machine(10**9, 1024),
            TINY,
            seeds=(0, 1, 2),
        )
        assert isinstance(outcome["a"], ReplicationResult)
        assert isinstance(outcome["b"], ReplicationResult)
        assert isinstance(outcome["significant"], bool)
        # speedup consistent with the means.
        expected = outcome["a"].mean / outcome["b"].mean - 1.0
        assert outcome["speedup_b_over_a"] == pytest.approx(expected)
