"""Tests for clock replacement and the standby list."""

import pytest

from repro.core.errors import SimulationError
from repro.mem.replacement import ClockReplacer, StandbyList


class TestClockReplacer:
    def test_victimises_unreferenced_frame(self):
        clock = ClockReplacer(4)
        frame, scanned = clock.choose_victim()
        assert frame == 0
        assert scanned == 1

    def test_second_chance(self):
        clock = ClockReplacer(4)
        clock.touch(0)
        frame, scanned = clock.choose_victim()
        # Frame 0 was referenced: its bit is cleared and the hand moves on.
        assert frame == 1
        assert scanned == 2

    def test_all_referenced_takes_two_sweeps(self):
        clock = ClockReplacer(4)
        for frame in range(4):
            clock.touch(frame)
        frame, scanned = clock.choose_victim()
        assert frame == 0  # first frame after clearing everyone
        assert scanned == 5

    def test_pinned_frames_never_chosen(self):
        clock = ClockReplacer(4)
        clock.pin(0)
        clock.pin(1)
        victims = {clock.choose_victim()[0] for _ in range(10)}
        assert victims <= {2, 3}

    def test_all_pinned_raises(self):
        clock = ClockReplacer(2)
        clock.pin(0)
        clock.pin(1)
        with pytest.raises(SimulationError):
            clock.choose_victim()

    def test_first_frame_offset(self):
        clock = ClockReplacer(4, first_frame=10)
        clock.touch(10)
        frame, _ = clock.choose_victim()
        assert frame == 11

    def test_out_of_range_frame_raises(self):
        clock = ClockReplacer(4, first_frame=10)
        with pytest.raises(SimulationError):
            clock.touch(3)

    def test_hand_advances_round_robin(self):
        clock = ClockReplacer(3)
        order = [clock.choose_victim()[0] for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]

    def test_unpin_restores_eligibility(self):
        clock = ClockReplacer(2)
        clock.pin(0)
        clock.unpin(0)
        victims = {clock.choose_victim()[0] for _ in range(4)}
        assert 0 in victims


class TestStandbyList:
    def test_disabled_by_default_capacity_zero(self):
        standby = StandbyList(0)
        assert not standby.enabled
        with pytest.raises(SimulationError):
            standby.park(1, 2)

    def test_park_and_reclaim(self):
        standby = StandbyList(2)
        assert standby.park(10, 0) is None
        assert standby.reclaim(10) == 0
        assert standby.soft_faults == 1
        assert len(standby) == 0

    def test_reclaim_missing_returns_none(self):
        standby = StandbyList(2)
        assert standby.reclaim(42) is None
        assert standby.soft_faults == 0

    def test_fifo_displacement(self):
        standby = StandbyList(2)
        standby.park(1, 100)
        standby.park(2, 200)
        displaced = standby.park(3, 300)
        assert displaced == (1, 100)  # oldest goes first
        assert standby.discards == 1

    def test_pop_oldest(self):
        standby = StandbyList(3)
        standby.park(1, 100)
        standby.park(2, 200)
        assert standby.pop_oldest() == (1, 100)
        assert standby.pop_oldest() == (2, 200)
        assert standby.pop_oldest() is None

    def test_double_park_raises(self):
        standby = StandbyList(2)
        standby.park(1, 100)
        with pytest.raises(SimulationError):
            standby.park(1, 101)

    def test_contains(self):
        standby = StandbyList(2)
        standby.park(1, 100)
        assert standby.contains(1)
        assert not standby.contains(2)
