"""Fast chunk path vs scalar reference path equivalence.

Both machines override :meth:`run_chunk` with an inlined hot loop; these
tests assert the loop is *observationally identical* to the scalar
``access()`` path the base class provides -- same statistics, same
simulated time, same final cache state -- over interleaved multi-process
traces, including page-fault-heavy RAMpage configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers import random_chunks
from repro.core.params import (
    KIB,
    MIB,
    CacheParams,
    HandlerCosts,
    MachineParams,
    RampageParams,
)
from repro.systems.base import MemorySystem
from repro.systems.factory import build_system


def conventional_params(block=256, assoc=1):
    return MachineParams(
        kind="conventional",
        issue_rate_hz=1_000_000_000,
        l2=CacheParams(1 * MIB, block, associativity=assoc),
        handlers=HandlerCosts(),
    )


def rampage_params(page=256, base_kib=64):
    return MachineParams(
        kind="rampage",
        issue_rate_hz=1_000_000_000,
        rampage=RampageParams(
            page_bytes=page,
            base_bytes=base_kib * KIB,
            pinned_code_data_bytes=2 * KIB,
            ipt_entry_bytes=16,
        ),
        handlers=HandlerCosts(),
    )


def run_both(params, chunks):
    fast = build_system(params)
    slow = build_system(params)
    for chunk in chunks:
        consumed_fast = fast.run_chunk(chunk)
        consumed_slow = MemorySystem.run_chunk(slow, chunk)
        assert consumed_fast == consumed_slow
    return fast.finalize(), slow.finalize()


@pytest.mark.parametrize(
    "params",
    [
        conventional_params(block=256, assoc=1),
        conventional_params(block=1024, assoc=2),
        rampage_params(page=256),
        rampage_params(page=1024, base_kib=128),
    ],
    ids=["direct-l2", "2way-l2", "rampage-256", "rampage-1k"],
)
def test_fast_path_matches_reference(params):
    fast, slow = run_both(params, random_chunks(seed=7))
    assert fast.stats.as_dict() == slow.stats.as_dict()
    assert fast.time_ps == slow.time_ps


def test_fast_path_matches_reference_with_faulting():
    """A tiny SRAM forces constant page faults and TLB flushes."""
    params = rampage_params(page=128, base_kib=16)
    fast, slow = run_both(params, random_chunks(seed=21, n_chunks=8))
    assert fast.stats.as_dict() == slow.stats.as_dict()


def test_fast_path_matches_with_switch_on_miss():
    from dataclasses import replace

    params = replace(
        rampage_params(page=128, base_kib=16),
        switch_on_miss=True,
        scheduled_switches=True,
    )
    fast, slow = run_both(params, random_chunks(seed=3))
    assert fast.stats.as_dict() == slow.stats.as_dict()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_equivalence_random_traces(seed):
    params = rampage_params(page=256, base_kib=32)
    fast, slow = run_both(params, random_chunks(seed=seed, n_chunks=4, chunk_len=250))
    assert fast.stats.as_dict() == slow.stats.as_dict()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_equivalence_conventional(seed):
    params = conventional_params(block=512)
    fast, slow = run_both(params, random_chunks(seed=seed, n_chunks=4, chunk_len=250))
    assert fast.stats.as_dict() == slow.stats.as_dict()
