"""Tests for OS handler reference synthesis."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import HandlerCosts, RampageParams
from repro.ossim.footprint import rampage_layout
from repro.ossim.handlers import HandlerLibrary
from repro.trace.record import IFETCH, READ, WRITE


@pytest.fixture()
def library():
    return HandlerLibrary(HandlerCosts(), rampage_layout(RampageParams()))


def kinds_of(refs):
    return [kind for kind, _ in refs]


class TestTlbMiss:
    def test_single_probe_length(self, library):
        costs = HandlerCosts()
        refs = library.tlb_miss_refs(vpn=100, probes=1)
        assert len(refs) == costs.tlb_instr + costs.tlb_data
        assert len(refs) == library.tlb_miss_ref_count(1)

    def test_extra_probes_add_refs(self, library):
        costs = HandlerCosts()
        refs = library.tlb_miss_refs(vpn=100, probes=3)
        expected = (
            costs.tlb_instr
            + costs.tlb_data
            + 2 * (costs.tlb_probe_instr + costs.tlb_probe_data)
        )
        assert len(refs) == expected
        assert len(refs) == library.tlb_miss_ref_count(3)

    def test_rejects_zero_probes(self, library):
        with pytest.raises(ConfigurationError):
            library.tlb_miss_refs(vpn=1, probes=0)

    def test_mix_of_instruction_and_data(self, library):
        refs = library.tlb_miss_refs(vpn=100, probes=2)
        kinds = set(kinds_of(refs))
        assert IFETCH in kinds and READ in kinds

    def test_same_vpn_touches_same_entries(self, library):
        a = library.tlb_miss_refs(vpn=100, probes=1)
        b = library.tlb_miss_refs(vpn=100, probes=1)
        assert a == b

    def test_addresses_stay_in_pinned_layout(self, library):
        layout = library.layout
        limit = layout.table_base + layout.table_bytes
        for _, addr in library.tlb_miss_refs(vpn=12345, probes=4):
            assert 0 <= addr < limit


class TestPageFault:
    def test_scan_cost_uses_bitmap_words(self, library):
        costs = HandlerCosts()
        base = library.page_fault_refs(vpn=5, scanned=0)
        assert len(base) == costs.fault_instr + costs.fault_data
        one_word = library.page_fault_refs(vpn=5, scanned=32)
        # 32 frames = one bitmap word: 4 instructions + 1 store.
        assert len(one_word) == len(base) + 5
        two_words = library.page_fault_refs(vpn=5, scanned=33)
        assert len(two_words) == len(base) + 10

    def test_count_helper_matches(self, library):
        for scanned in (0, 1, 31, 32, 100):
            assert library.page_fault_ref_count(scanned) == len(
                library.page_fault_refs(vpn=9, scanned=scanned)
            )

    def test_rejects_negative_scan(self, library):
        with pytest.raises(ConfigurationError):
            library.page_fault_refs(vpn=1, scanned=-1)

    def test_contains_writes(self, library):
        refs = library.page_fault_refs(vpn=5, scanned=64)
        assert WRITE in kinds_of(refs)


class TestContextSwitch:
    def test_paper_400_references(self, library):
        refs = library.context_switch_refs(pid=0)
        assert len(refs) == 400

    def test_cached_per_pid(self, library):
        assert library.context_switch_refs(3) is library.context_switch_refs(3)

    def test_different_pids_touch_different_pcbs(self, library):
        a = {addr for _, addr in library.context_switch_refs(0)}
        b = {addr for _, addr in library.context_switch_refs(1)}
        assert a != b

    def test_mostly_instructions(self, library):
        refs = library.context_switch_refs(0)
        instr = sum(1 for kind, _ in refs if kind == IFETCH)
        assert instr == HandlerCosts().switch_instr
