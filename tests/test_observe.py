"""Tests for the observability layer (events, counters, manifests)."""

import json

import pytest

from repro.core.observe import (
    CacheStats,
    EventLog,
    atomic_write_text,
    manifest_path,
    read_events,
    read_manifest,
    write_manifest,
)


# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------


def test_emit_records_in_memory_and_on_disk(tmp_path):
    path = tmp_path / "events.jsonl"
    ticks = iter(range(10))
    log = EventLog(path, clock=lambda: next(ticks))
    log.emit("cell_started", key="abc", label="baseline")
    log.emit("cell_completed", key="abc", wall_s=1.25)

    assert [event["event"] for event in log.events] == [
        "cell_started",
        "cell_completed",
    ]
    lines = path.read_text("utf-8").splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "cell_started"
    assert first["key"] == "abc"
    assert first["ts"] == 0
    assert isinstance(first["pid"], int)


def test_memory_only_log_never_touches_disk(tmp_path):
    log = EventLog(None)
    log.emit("anything", n=1)
    assert log.path is None
    assert list(tmp_path.iterdir()) == []
    assert log.of("anything") == [log.events[0]]


def test_in_memory_tail_is_bounded():
    log = EventLog(keep=3)
    for index in range(10):
        log.emit("tick", n=index)
    assert [event["n"] for event in log.events] == [7, 8, 9]


def test_two_logs_append_to_one_file(tmp_path):
    """Concurrent sweeps share one JSONL file by appending lines."""
    path = tmp_path / "events.jsonl"
    EventLog(path).emit("a")
    EventLog(path).emit("b")
    assert [event["event"] for event in read_events(path)] == ["a", "b"]


def test_read_events_skips_torn_trailing_line(tmp_path):
    path = tmp_path / "events.jsonl"
    EventLog(path).emit("good")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "torn", "tr')  # crash mid-append
    events = read_events(path)
    assert [event["event"] for event in events] == ["good"]
    assert read_events(tmp_path / "missing.jsonl") == []


# ----------------------------------------------------------------------
# atomic_write_text
# ----------------------------------------------------------------------


def test_atomic_write_creates_parents_and_replaces(tmp_path):
    target = tmp_path / "deep" / "nested" / "file.json"
    atomic_write_text(target, "one")
    atomic_write_text(target, "two")
    assert target.read_text("utf-8") == "two"
    # No temp residue anywhere in the directory.
    assert [item.name for item in target.parent.iterdir()] == ["file.json"]


def test_atomic_write_failure_leaves_old_contents(tmp_path, monkeypatch):
    import repro.core.observe as observe_mod

    target = tmp_path / "file.json"
    atomic_write_text(target, "committed")

    def exploding_fsync(fd):
        raise OSError("disk full")

    monkeypatch.setattr(observe_mod.os, "fsync", exploding_fsync)
    with pytest.raises(OSError):
        atomic_write_text(target, "half-written")
    # The destination still holds the previous commit, and the torn
    # temp file was cleaned up.
    assert target.read_text("utf-8") == "committed"
    assert [item.name for item in tmp_path.iterdir()] == ["file.json"]


# ----------------------------------------------------------------------
# CacheStats + manifest
# ----------------------------------------------------------------------


def test_cache_stats_accounting():
    stats = CacheStats(hits_memory=2, hits_disk=3, misses=4)
    assert stats.hits == 5
    assert stats.as_dict()["misses"] == 4
    assert set(stats.as_dict()) == {
        "hits_memory",
        "hits_disk",
        "misses",
        "stores",
        "quarantined",
        "evictions",
    }


def test_manifest_round_trip(tmp_path):
    payload = {"grids": ["baseline"], "cache": CacheStats(misses=6).as_dict()}
    path = write_manifest(tmp_path, payload)
    assert path == manifest_path(tmp_path)
    loaded = read_manifest(tmp_path)
    assert loaded["schema"].startswith("rampage-manifest/")
    assert loaded["grids"] == ["baseline"]
    assert loaded["cache"]["misses"] == 6


def test_read_manifest_tolerates_absence_and_garbage(tmp_path):
    assert read_manifest(tmp_path) is None
    manifest_path(tmp_path).parent.mkdir(parents=True)
    manifest_path(tmp_path).write_text("{ torn", "utf-8")
    assert read_manifest(tmp_path) is None
    manifest_path(tmp_path).write_text("[1, 2]", "utf-8")
    assert read_manifest(tmp_path) is None


def test_emit_is_thread_safe(tmp_path):
    """Concurrent emitters may interleave, but every journal line must be
    intact JSON and every event must land exactly once."""
    import threading

    path = tmp_path / "events.jsonl"
    log = EventLog(path, keep=10_000)

    def worker(worker_id):
        for i in range(100):
            log.emit("tick", worker=worker_id, i=i)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(log.events) == 800
    lines = path.read_text("utf-8").splitlines()
    assert len(lines) == 800
    seen = set()
    for line in lines:
        event = json.loads(line)  # no torn/interleaved writes
        seen.add((event["worker"], event["i"]))
    assert len(seen) == 800


def test_listeners_observe_every_emit(tmp_path):
    log = EventLog(None)
    heard = []
    listener = log.subscribe(lambda event: heard.append(event["event"]))
    log.emit("cell_started", key="abc")
    log.emit("cell_completed", key="abc")
    assert heard == ["cell_started", "cell_completed"]

    log.unsubscribe(listener)
    log.emit("sweep_started")
    assert heard == ["cell_started", "cell_completed"]
    # Unsubscribing twice (or an unknown listener) is harmless.
    log.unsubscribe(listener)


def test_listener_errors_do_not_block_the_log():
    log = EventLog(None)

    def bad_listener(event):
        raise RuntimeError("listener bug")

    log.subscribe(bad_listener)
    with pytest.raises(RuntimeError):
        log.emit("tick")
    # The event itself was still recorded before the listener ran.
    assert [event["event"] for event in log.events] == ["tick"]
